/**
 * @file
 * Thread scaling of the SINGLE-trace analysis engine: one large
 * synthetic trace (hundreds of thousands of events) analyzed with
 * AnalysisOptions::threads = 1 -> N.
 *
 * The sharded candidate enumeration and the level-parallel
 * reachability clocks are share-nothing, so wall time should drop
 * until core count intervenes (the acceptance target is >= 2x at 4
 * threads on a >= 4-core host with a 100k+-event trace); the report
 * is verified byte-identical across thread counts on every run.  A
 * machine-readable JSON block (threads -> wall seconds, events/s)
 * follows the table for plotting/regression tooling.
 *
 * WMR_BENCH_SMOKE=1 shrinks the trace so the binary doubles as a
 * fast CTest smoke entry.
 */

#include "bench_util.hh"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "workload/synthetic_trace.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

/** The benched trace, built once.  Low hot fraction: the goal is a
 *  LARGE candidate workload, not a quadratic race blowup in the
 *  partitioning stages. */
const ExecutionTrace &
benchTrace()
{
    static const ExecutionTrace trace = [] {
        SyntheticTraceOptions opts;
        opts.procs = 8;
        opts.eventsPerProc = smokeMode() ? 500u : 16'000u;
        opts.memWords = 4096;
        opts.syncWords = 64;
        opts.hotWords = 16;
        opts.hotFraction = 0.02;
        opts.syncFraction = 0.1;
        opts.seed = 42;
        return makeSyntheticTrace(opts);
    }();
    return trace;
}

double
analyzeOnce(unsigned threads, std::string *report,
            AnalysisStats *stats)
{
    AnalysisOptions opts;
    opts.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const DetectionResult det = analyzeTrace(benchTrace(), opts);
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (report)
        *report = formatReport(det);
    if (stats)
        *stats = det.stats();
    return wall;
}

void
reproduce()
{
    const std::uint64_t events = benchTrace().events().size();
    section("single-trace analysis thread scaling (" +
            std::to_string(events) + "-event synthetic trace" +
            (smokeMode() ? ", smoke mode)" : ")"));
    const unsigned cores = std::thread::hardware_concurrency();
    note("hardware concurrency: " + std::to_string(cores) +
         " core(s) — the >=2x-at-4-threads target needs >=4 cores; "
         "on a single-core host expect ~1.0x");

    struct Row
    {
        unsigned threads;
        double wall;
        double eventsPerSec;
    };
    std::vector<Row> rows;
    double baseline = 0;
    std::string report1;
    bool identical = true;

    std::printf("  %-8s %12s %14s %10s %8s %10s\n", "threads",
                "wall ms", "events/s", "speedup", "shards",
                "clk-levels");
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        // Best of 3: one scheduler hiccup must not dominate.
        double best = 0;
        std::string report;
        AnalysisStats stats;
        for (int rep = 0; rep < 3; ++rep) {
            std::string r;
            AnalysisStats s;
            const double wall = analyzeOnce(threads, &r, &s);
            if (best == 0 || wall < best) {
                best = wall;
                report = std::move(r);
                stats = s;
            }
        }
        if (threads == 1)
            report1 = report;
        else if (report != report1) {
            identical = false;
            note("!! report mismatch vs threads=1 (determinism "
                 "violation)");
        }
        rows.push_back(
            {threads, best, static_cast<double>(events) / best});
        std::printf("  %-8u %12.2f %14.1f %9.2fx %8u %10u\n",
                    threads, best * 1e3,
                    static_cast<double>(events) / best,
                    (baseline == 0 ? 1.0 : baseline / best),
                    stats.finder.shards, stats.hbReach.levels);
        if (threads == 1)
            baseline = best;
    }
    note(identical
             ? "report verified byte-identical across thread counts."
             : "DETERMINISM VIOLATION — see above.");

    // Machine-readable block for plotting/regression tooling.
    std::printf("{\n  \"schema\": \"wmrace-analysis-scaling\",\n");
    std::printf("  \"events\": %llu,\n",
                static_cast<unsigned long long>(events));
    std::printf("  \"hardware_concurrency\": %u,\n", cores);
    std::printf("  \"reports_identical\": %s,\n",
                identical ? "true" : "false");
    std::printf("  \"results\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("    {\"threads\": %u, \"wall_seconds\": %.6f, "
                    "\"events_per_second\": %.1f, \"speedup\": "
                    "%.3f}%s\n",
                    rows[i].threads, rows[i].wall,
                    rows[i].eventsPerSec,
                    rows[0].wall / rows[i].wall,
                    i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
}

void
BM_AnalyzeTrace(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const double wall = analyzeOnce(threads, nullptr, nullptr);
        benchmark::DoNotOptimize(wall);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(benchTrace().events().size()));
}
BENCHMARK(BM_AnalyzeTrace)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

WMR_BENCH_MAIN(reproduce)
