/**
 * @file
 * Process-wide, env-driven fault-injection registry — the unified
 * successor of the tracer-local `WMR_RT_FAULT` hook (PR 3), now
 * threaded through every I/O and network boundary (trace container
 * writes/reads, the serve daemon, the stream tail reader, checkpoint
 * journal appends).  Production builds pay one relaxed atomic load
 * per site when `WMR_FAULT` is unset.
 *
 * Configuration:
 *
 *   WMR_FAULT      = entry (',' entry)*
 *   entry          = site [ '@' spec ]
 *   spec           = field (':' field)*
 *   field          = 'p' FLOAT        fire each hit with probability
 *                                     FLOAT in [0,1] (seeded, see
 *                                     WMR_FAULT_SEED)
 *                  | 'n' UINT         fire exactly on the UINTth hit
 *                                     (1-based)
 *                  | 'after' UINT     fire on every hit past the
 *                                     first UINT
 *                  | 'once'           fire on the first hit only
 *                  | UINT             site-interpreted parameter
 *                                     (sleep seconds, storm length,
 *                                     byte index, ...)
 *   WMR_FAULT_SEED = u64 decimal (default 0)
 *
 * A site with no trigger field fires on EVERY hit.  Examples:
 *
 *   WMR_FAULT=serve.accept.fail@p0.25
 *   WMR_FAULT=trace.seg.write.enospc@n3
 *   WMR_FAULT=serve.io.eintr@after2:5,stream.tail.stall@n1
 *   WMR_FAULT=rt.slow-child@30          (legacy tracer site: param)
 *
 * Determinism: the probability trigger draws from a counter-based
 * PRNG keyed on (seed, site-name hash, hit ordinal) — the same seed
 * and the same per-site hit sequence replay the same schedule, with
 * no cross-site or cross-thread interference.  That is what lets
 * tools/chaos.sh re-run a failing soak schedule exactly.
 *
 * Observability: every fire bumps the obs counter `fault.<site>`
 * and every evaluation bumps `fault.<site>.hits`, so a chaos run's
 * `--obs` snapshot shows which faults actually landed.
 *
 * The legacy `WMR_RT_FAULT=<name>[@N]` tracer faults are aliased as
 * `rt.<name>@N` sites (see rt/annotate.cc); the old variable keeps
 * working and wins when both are set.
 */

#ifndef WMR_FAULT_FAULT_HH
#define WMR_FAULT_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace wmr::fault {

namespace detail {

/** True iff any site is configured (lazy-parsed from WMR_FAULT). */
extern std::atomic<bool> gEnabled;

/** Parse WMR_FAULT/WMR_FAULT_SEED once (thread-safe, idempotent). */
void ensureInit();

bool atSlow(const char *site, std::uint64_t *param);

} // namespace detail

/**
 * Count one hit of @p site and decide whether its configured fault
 * schedule fires on this hit.  Unconfigured sites — and processes
 * with no WMR_FAULT at all — return false; the latter costs a single
 * relaxed load.  Thread-safe.
 *
 * When @p param is non-null and the site carries a bare-integer
 * parameter field, the parameter is stored through it (otherwise 0).
 */
inline bool
at(const char *site, std::uint64_t *param = nullptr)
{
    if (param != nullptr)
        *param = 0;
    if (!detail::gEnabled.load(std::memory_order_acquire))
        return false;
    return detail::atSlow(site, param);
}

/** @return whether @p site appears in WMR_FAULT (no hit counted). */
bool configured(const char *site);

/** @return @p site's configured integer parameter, or @p def when
 *  the site is absent or carries none.  No hit is counted. */
std::uint64_t paramOr(const char *site, std::uint64_t def);

/**
 * (Re)configure the registry from @p spec and @p seed, replacing any
 * prior (or env-derived) configuration — the test hook.  An empty
 * @p spec disables injection.  @return false with *@p error set on a
 * grammar violation (the registry is then left disabled: a chaos
 * harness must know its schedule was refused, not silently run
 * fault-free).
 */
bool configure(const std::string &spec, std::uint64_t seed,
               std::string *error = nullptr);

/** Hits counted against @p site so far (0 when unconfigured). */
std::uint64_t hits(const char *site);

/** Times @p site actually fired so far (0 when unconfigured). */
std::uint64_t fired(const char *site);

/**
 * Record that a fault managed OUTSIDE the registry fired at @p site
 * — bumps the `fault.<site>` obs counter only.  Used by the legacy
 * tracer faults, whose crash machinery predates the registry but
 * whose firings should still show up in the unified accounting.
 */
void noteFired(const char *site);

/** The active seed (WMR_FAULT_SEED or the configure() value). */
std::uint64_t seed();

} // namespace wmr::fault

#endif // WMR_FAULT_FAULT_HH
