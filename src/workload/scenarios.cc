#include "workload/scenarios.hh"

#include "common/logging.hh"
#include "prog/builder.hh"
#include "sim/scheduler.hh"

namespace wmr {

Scenario
stageFigure1aViolation(ModelKind model)
{
    wmr_assert(model != ModelKind::SC);
    Scenario s{figure1a(), {}};

    // P1 (proc 0): storei x; storei y; halt.
    // P2 (proc 1): load y;  load x;  halt.
    // Stage: both stores buffered, drain y only, then P2 reads.
    ScriptedScheduler sched({0, 0, 1, 1});
    ExecOptions opts;
    opts.model = model;
    opts.drainLaziness = 1.0; // no spontaneous drains
    opts.scheduler = &sched;
    opts.drainScript = {{.afterPick = 2, .proc = 0, .addr = 1}}; // y
    s.result = runProgram(s.program, opts);
    return s;
}

Scenario
stageInvalidateFigure1a(ModelKind model)
{
    wmr_assert(model != ModelKind::SC);

    // Figure 1(a) with a warm-up read: P2 caches x before P1 writes.
    ProgramBuilder pb;
    pb.var("x", 0).var("y", 1);
    ThreadBuilder p1, p2;
    p1.storei(0, 1).note("Write(x)")
      .storei(1, 1).note("Write(y)")
      .halt();
    p2.load(2, 0).note("warm-up Read(x): caches the old copy")
      .load(0, 1).note("Read(y)")
      .load(1, 0).note("Read(x)")
      .halt();
    pb.thread(p1).thread(p2);

    Scenario s{pb.build(), {}};
    // Picks: P2 warms x; P1 writes x and y (x's invalidation sits in
    // P2's inbox); P2 reads y (miss -> fresh) then x (hit -> stale).
    ScriptedScheduler sched({1, 0, 0, 1, 1});
    ExecOptions opts;
    opts.model = model;
    opts.realization = Realization::Invalidate;
    opts.drainLaziness = 1.0;
    opts.scheduler = &sched;
    s.result = runProgram(s.program, opts);
    return s;
}

Scenario
stageFigure2bExecution(QueueParams params, ModelKind model)
{
    wmr_assert(model != ModelKind::SC);
    wmr_assert(params.staleOffset < params.regionSize);
    wmr_assert(!params.withTestAndSet);
    Scenario s{figure2Queue(params), {}};

    // Thread layout: P1=proc 0, P2=proc 1, P3=proc 2.
    // Picks: P1 runs movi, store Q, storei QEmpty (both stores
    // buffered); QEmpty's store drains FIRST (the reordering);
    // P2 then reads QEmpty==0, branches, reads the stale Q, and
    // releases S; P1 releases S (draining Q's store — too late).
    // The fallback round-robin completes the region loops of P2/P3.
    ScriptedScheduler sched({0, 0, 0, 1, 1, 1, 1, 0});
    ExecOptions opts;
    opts.model = model;
    opts.drainLaziness = 1.0;
    opts.scheduler = &sched;
    opts.drainScript = {
        {.afterPick = 3, .proc = 0, .addr = 1}, // QEmpty
    };
    s.result = runProgram(s.program, opts);
    return s;
}

} // namespace wmr
