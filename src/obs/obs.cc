#include "obs/obs.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/export.hh"

namespace wmr::obs {

namespace detail {
std::atomic<bool> gEnabled{false};
} // namespace detail

namespace {

// ---------------------------------------------------------------
// The lock-free counter/gauge registry.
//
// Fixed table of cells; a registration hashes the name and probes
// linearly, claiming an empty slot by CAS on the name pointer (the
// stored string is an immutable process-lifetime copy).  Lookups and
// updates never lock; a full table yields null handles, counted.
// ---------------------------------------------------------------

constexpr std::size_t kRegistryCells = 1024; // power of two

struct Cell
{
    std::atomic<const char *> name{nullptr};
    std::atomic<std::uint64_t> value{0};
    std::atomic<bool> isGauge{false};
};

Cell gCells[kRegistryCells];
std::atomic<std::uint64_t> gRegistryOverflows{0};

std::uint64_t
hashName(const char *s)
{
    // FNV-1a.
    std::uint64_t h = 1469598103934665603ull;
    for (; *s; ++s) {
        h ^= static_cast<unsigned char>(*s);
        h *= 1099511628211ull;
    }
    return h;
}

Cell *
findOrClaim(const char *name)
{
    const std::uint64_t h = hashName(name);
    for (std::size_t probe = 0; probe < kRegistryCells; ++probe) {
        Cell &c = gCells[(h + probe) & (kRegistryCells - 1)];
        const char *cur = c.name.load(std::memory_order_acquire);
        if (cur == nullptr) {
            // Claim: publish an immutable copy of the name.  The
            // copy leaks by design (registered names live for the
            // process); a lost race frees ours and retries on the
            // winner's slot.
            char *copy = ::strdup(name);
            const char *expected = nullptr;
            if (c.name.compare_exchange_strong(
                    expected, copy, std::memory_order_acq_rel)) {
                return &c;
            }
            std::free(copy);
            cur = expected;
        }
        if (std::strcmp(cur, name) == 0)
            return &c;
    }
    gRegistryOverflows.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

// ---------------------------------------------------------------
// Per-thread span logs.
//
// Each thread owns a log; a light mutex per log makes the snapshot
// (rare, end of run) race-free against a still-recording thread
// without slowing other threads.  Logs are shared_ptr so a thread
// exiting before the export does not invalidate its spans.
// ---------------------------------------------------------------

struct SpanRecord
{
    const char *name = nullptr;
    std::string detail;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    std::uint32_t depth = 0;
};

struct ThreadLog
{
    std::uint32_t tid = 0;
    std::mutex mu; ///< guards spans + threadName vs snapshot
    std::string threadName;
    std::vector<SpanRecord> spans;
    std::uint32_t depth = 0; ///< owning thread only
};

std::mutex gLogsMu;
std::vector<std::shared_ptr<ThreadLog>> gLogs;
std::atomic<std::uint32_t> gNextTid{0};

ThreadLog &
threadLog()
{
    thread_local std::shared_ptr<ThreadLog> log = [] {
        auto l = std::make_shared<ThreadLog>();
        l->tid = gNextTid.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(gLogsMu);
        gLogs.push_back(l);
        return l;
    }();
    return *log;
}

std::chrono::steady_clock::time_point
epoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

// ---------------------------------------------------------------
// WMR_OBS environment activation.
// ---------------------------------------------------------------

char gExitPath[4096];
enum class ExitSink : std::uint8_t { None, Stderr, Chrome, Jsonl };
ExitSink gExitSink = ExitSink::None;

void
atexitExport()
{
    switch (gExitSink) {
      case ExitSink::None:
        break;
      case ExitSink::Stderr:
        std::fprintf(stderr, "%s", formatCounterSummary().c_str());
        break;
      case ExitSink::Chrome:
        if (!writeChromeTrace(gExitPath))
            std::fprintf(stderr,
                         "wmr-obs: cannot write Chrome trace '%s'\n",
                         gExitPath);
        break;
      case ExitSink::Jsonl:
        if (!writeJsonLines(gExitPath))
            std::fprintf(stderr,
                         "wmr-obs: cannot write JSON lines '%s'\n",
                         gExitPath);
        break;
    }
}

void
initFromEnv()
{
    const char *env = std::getenv("WMR_OBS");
    if (!env || !*env || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "off") == 0) {
        return;
    }
    if (std::strncmp(env, "chrome:", 7) == 0 && env[7]) {
        gExitSink = ExitSink::Chrome;
        std::snprintf(gExitPath, sizeof(gExitPath), "%s", env + 7);
    } else if (std::strncmp(env, "jsonl:", 6) == 0 && env[6]) {
        gExitSink = ExitSink::Jsonl;
        std::snprintf(gExitPath, sizeof(gExitPath), "%s", env + 6);
    } else {
        gExitSink = ExitSink::Stderr; // "1", "on", anything else
    }
    (void)epoch(); // pin the time origin before any span
    detail::gEnabled.store(true, std::memory_order_relaxed);
    std::atexit(atexitExport);
}

/** Static-init hook: env activation needs no call from main(), so
 *  annotated programs (wmrace record children) get it too. */
struct EnvInit
{
    EnvInit() { initFromEnv(); }
};
EnvInit gEnvInit;

} // namespace

// ---------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------

void
setEnabled(bool on)
{
    if (on)
        (void)epoch();
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

Counter
counter(const char *name)
{
    Counter h;
    if (Cell *c = findOrClaim(name))
        h.cell_ = &c->value;
    return h;
}

Counter
gauge(const char *name)
{
    Counter h;
    if (Cell *c = findOrClaim(name)) {
        c->isGauge.store(true, std::memory_order_relaxed);
        h.cell_ = &c->value;
    }
    return h;
}

std::vector<CounterSample>
counterSnapshot()
{
    std::vector<CounterSample> out;
    for (Cell &c : gCells) {
        const char *name = c.name.load(std::memory_order_acquire);
        if (!name)
            continue;
        CounterSample s;
        s.name = name;
        s.value = c.value.load(std::memory_order_relaxed);
        s.isGauge = c.isGauge.load(std::memory_order_relaxed);
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const CounterSample &a, const CounterSample &b) {
                  return a.name < b.name;
              });
    return out;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
}

void
setThreadName(const std::string &name)
{
    ThreadLog &log = threadLog();
    std::lock_guard<std::mutex> lk(log.mu);
    log.threadName = name;
}

std::vector<ThreadSample>
spanSnapshot()
{
    std::vector<std::shared_ptr<ThreadLog>> logs;
    {
        std::lock_guard<std::mutex> lk(gLogsMu);
        logs = gLogs;
    }
    std::vector<ThreadSample> out;
    out.reserve(logs.size());
    for (const auto &log : logs) {
        ThreadSample t;
        std::lock_guard<std::mutex> lk(log->mu);
        t.tid = log->tid;
        t.name = log->threadName;
        t.spans.reserve(log->spans.size());
        for (const SpanRecord &r : log->spans) {
            SpanSample s;
            s.name = r.name;
            s.detail = r.detail;
            s.startNs = r.startNs;
            s.durNs = r.durNs;
            s.depth = r.depth;
            t.spans.push_back(std::move(s));
        }
        out.push_back(std::move(t));
    }
    std::sort(out.begin(), out.end(),
              [](const ThreadSample &a, const ThreadSample &b) {
                  return a.tid < b.tid;
              });
    return out;
}

void
Span::begin(const char *name)
{
    ThreadLog &log = threadLog();
    log_ = &log;
    name_ = name;
    depth_ = log.depth++;
    startNs_ = nowNs();
}

void
Span::end()
{
    auto &log = *static_cast<ThreadLog *>(log_);
    const std::uint64_t endNs = nowNs();
    log.depth = depth_; // unwind nesting even on exceptions
    SpanRecord rec;
    rec.name = name_;
    rec.detail = std::move(detail_);
    rec.startNs = startNs_;
    rec.durNs = endNs - startNs_;
    rec.depth = depth_;
    std::lock_guard<std::mutex> lk(log.mu);
    log.spans.push_back(std::move(rec));
}

void
resetForTest()
{
    {
        std::lock_guard<std::mutex> lk(gLogsMu);
        for (const auto &log : gLogs) {
            std::lock_guard<std::mutex> lk2(log->mu);
            log->spans.clear();
        }
    }
    for (Cell &c : gCells) {
        if (c.name.load(std::memory_order_acquire))
            c.value.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t
registryOverflows()
{
    return gRegistryOverflows.load(std::memory_order_relaxed);
}

} // namespace wmr::obs
