#include "sim/executor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace wmr {

namespace {

/** Architectural state of one simulated processor. */
struct ProcState
{
    std::uint32_t pc = 0;
    std::array<Value, kNumRegs> regs{};
    bool halted = false;
    std::uint32_t memOps = 0;   ///< per-proc program-order counter
    Tick cycles = 0;

    /** Per-register taint: the value was influenced by stale data. */
    std::uint32_t regTaint = 0;

    /** Control flow diverged from the SC witness (branched on a
     *  tainted value): every later op of this proc is divergent. */
    bool tainted = false;

    bool taintOf(RegId r) const { return (regTaint >> r) & 1u; }

    void
    setTaint(RegId r, bool t)
    {
        if (t)
            regTaint |= 1u << r;
        else
            regTaint &= ~(1u << r);
    }
};

} // namespace

ExecutionResult
Executor::run(const Program &prog, const ExecOptions &opts)
{
    prog.validate();
    const ProcId nprocs = prog.numProcs();
    wmr_assert(nprocs > 0);

    Rng rng(opts.seed);
    auto model = makeModelOf(opts.realization, opts.model, nprocs,
                             prog.memWords(), opts.cost,
                             opts.drainLaziness);

    // Install the initial memory image before any processor runs.
    // Using sync writes with the kNoOp id makes reads of the image
    // report observedWrite == kNoOp ("initial value"), never stale.
    for (const auto &[addr, value] : prog.initialMemory()) {
        if (value != 0)
            model->writeSync(0, addr, value, kNoOp, /*release=*/false);
    }

    RandomScheduler default_sched;
    Scheduler *sched =
        opts.scheduler ? opts.scheduler : &default_sched;

    std::vector<ProcState> procs(nprocs);
    ExecutionResult res;
    res.model = opts.model;

    const auto record = [&](MemOp op) {
        op.id = static_cast<OpId>(res.ops.size());
        op.step = res.stepOrder.size() - 1; // current pick index
        if (op.kind == OpKind::Read && op.stale) {
            ++res.staleReads;
            if (res.firstStaleRead == kNoOp)
                res.firstStaleRead = op.id;
        }
        res.ops.push_back(op);
        if (opts.sink)
            opts.sink->onOp(res.ops.back());
        return res.ops.back().id;
    };

    std::vector<ProcId> runnable;
    runnable.reserve(nprocs);
    for (ProcId p = 0; p < nprocs; ++p)
        runnable.push_back(p);

    std::vector<DrainDirective> drains = opts.drainScript;
    std::sort(drains.begin(), drains.end(),
              [](const DrainDirective &a, const DrainDirective &b) {
                  return a.afterPick < b.afterPick;
              });
    std::size_t nextDrain = 0;

    while (!runnable.empty() && res.steps < opts.maxSteps) {
        const ProcId pid = sched->pick(runnable, rng);
        // Every pick is recorded (even one that merely retires a
        // fallen-off-the-end thread) so a ScriptedScheduler replay of
        // stepOrder reproduces the interleaving exactly.
        res.stepOrder.push_back(pid);
        ProcState &ps = procs[pid];
        wmr_assert(!ps.halted);

        const auto &code = prog.thread(pid).code;
        if (ps.pc >= code.size()) {
            ps.halted = true;
        } else {
            const Instr &i = code[ps.pc];
            std::uint32_t next_pc = ps.pc + 1;
            Tick cost = 1;

            const auto ea = [&]() -> Addr {
                Addr a = i.addr;
                if (i.indexed) {
                    a += static_cast<Addr>(
                        static_cast<std::uint64_t>(ps.regs[i.a]));
                }
                return a;
            };

            // Does this memory operation still occur, with this
            // address, in the SC witness Eseq?  Not if control flow
            // already diverged or the address came through a tainted
            // index register.
            const bool divergent_op =
                ps.tainted || (i.indexed && ps.taintOf(i.a));

            const auto makeOp = [&](OpKind kind, bool sync, bool acq,
                                    bool rel, Addr addr, Value value) {
                MemOp op;
                op.proc = pid;
                op.poIndex = ps.memOps++;
                op.pc = ps.pc;
                op.kind = kind;
                op.sync = sync;
                op.acquire = acq;
                op.release = rel;
                op.addr = addr;
                op.value = value;
                op.divergent = divergent_op;
                return op;
            };

            // Taint of the value a read returned: stale reads and
            // reads of tainted/divergent writes yield values Eseq
            // would not supply.
            const auto readTaint = [&](const ReadResult &r) {
                if (r.stale)
                    return true;
                if (r.observedWrite == kNoOp)
                    return false;
                const MemOp &w = res.ops[r.observedWrite];
                return w.taintedValue || w.divergent;
            };

            switch (i.op) {
              case Opcode::Nop:
                break;
              case Opcode::MovI:
                ps.regs[i.dst] = i.imm;
                ps.setTaint(i.dst, false);
                break;
              case Opcode::Mov:
                ps.regs[i.dst] = ps.regs[i.a];
                ps.setTaint(i.dst, ps.taintOf(i.a));
                break;
              case Opcode::Add:
                ps.regs[i.dst] = ps.regs[i.a] + ps.regs[i.b];
                ps.setTaint(i.dst, ps.taintOf(i.a) || ps.taintOf(i.b));
                break;
              case Opcode::AddI:
                ps.regs[i.dst] = ps.regs[i.a] + i.imm;
                ps.setTaint(i.dst, ps.taintOf(i.a));
                break;
              case Opcode::Sub:
                ps.regs[i.dst] = ps.regs[i.a] - ps.regs[i.b];
                ps.setTaint(i.dst, ps.taintOf(i.a) || ps.taintOf(i.b));
                break;
              case Opcode::Mul:
                ps.regs[i.dst] = ps.regs[i.a] * ps.regs[i.b];
                ps.setTaint(i.dst, ps.taintOf(i.a) || ps.taintOf(i.b));
                break;
              case Opcode::CmpEq:
                ps.setTaint(i.dst, ps.taintOf(i.a) || ps.taintOf(i.b));
                ps.regs[i.dst] = ps.regs[i.a] == ps.regs[i.b];
                break;
              case Opcode::CmpNe:
                ps.regs[i.dst] = ps.regs[i.a] != ps.regs[i.b];
                ps.setTaint(i.dst, ps.taintOf(i.a) || ps.taintOf(i.b));
                break;
              case Opcode::CmpLt:
                ps.regs[i.dst] = ps.regs[i.a] < ps.regs[i.b];
                ps.setTaint(i.dst, ps.taintOf(i.a) || ps.taintOf(i.b));
                break;
              case Opcode::CmpEqI:
                ps.regs[i.dst] = ps.regs[i.a] == i.imm;
                ps.setTaint(i.dst, ps.taintOf(i.a));
                break;
              case Opcode::CmpLtI:
                ps.regs[i.dst] = ps.regs[i.a] < i.imm;
                ps.setTaint(i.dst, ps.taintOf(i.a));
                break;

              case Opcode::Load: {
                const Addr a = ea();
                const ReadResult r = model->readData(pid, a);
                ps.regs[i.dst] = r.value;
                cost += r.cost;
                MemOp op = makeOp(OpKind::Read, false, false, false, a,
                                  r.value);
                op.observedWrite = r.observedWrite;
                op.stale = r.stale;
                op.tick = ps.cycles + cost;
                ps.setTaint(i.dst, readTaint(r));
                record(op);
                break;
              }
              case Opcode::Store:
              case Opcode::StoreI: {
                const Addr a = ea();
                const Value v =
                    i.op == Opcode::Store ? ps.regs[i.b] : i.imm;
                MemOp op = makeOp(OpKind::Write, false, false, false, a,
                                  v);
                op.taintedValue =
                    i.op == Opcode::Store && ps.taintOf(i.b);
                op.id = static_cast<OpId>(res.ops.size());
                const WriteResult w =
                    model->writeData(pid, a, v, op.id);
                cost += w.cost;
                op.tick = ps.cycles + cost;
                record(op);
                break;
              }

              case Opcode::TestAndSet: {
                // Atomic: acquire read of the old value, then a sync
                // (non-release) write of 1.  Both access the global
                // coherent memory.
                const Addr a = ea();
                const ReadResult r =
                    model->readSync(pid, a, /*acquire=*/true);
                ps.regs[i.dst] = r.value;
                cost += r.cost;
                MemOp rd = makeOp(OpKind::Read, true, true, false, a,
                                  r.value);
                rd.observedWrite = r.observedWrite;
                rd.stale = r.stale;
                rd.tick = ps.cycles + cost;
                ps.setTaint(i.dst, readTaint(r));
                record(rd);

                MemOp wr = makeOp(OpKind::Write, true, false, false, a,
                                  1);
                wr.id = static_cast<OpId>(res.ops.size());
                const WriteResult w = model->writeSync(
                    pid, a, 1, wr.id, /*release=*/false);
                cost += w.cost;
                wr.tick = ps.cycles + cost;
                record(wr);
                break;
              }
              case Opcode::Unset: {
                const Addr a = ea();
                MemOp op = makeOp(OpKind::Write, true, false, true, a,
                                  0);
                op.id = static_cast<OpId>(res.ops.size());
                const WriteResult w = model->writeSync(
                    pid, a, 0, op.id, /*release=*/true);
                cost += w.cost;
                op.tick = ps.cycles + cost;
                record(op);
                break;
              }
              case Opcode::SyncLoad: {
                const Addr a = ea();
                const ReadResult r =
                    model->readSync(pid, a, /*acquire=*/true);
                ps.regs[i.dst] = r.value;
                cost += r.cost;
                MemOp op = makeOp(OpKind::Read, true, true, false, a,
                                  r.value);
                op.observedWrite = r.observedWrite;
                op.stale = r.stale;
                op.tick = ps.cycles + cost;
                ps.setTaint(i.dst, readTaint(r));
                record(op);
                break;
              }
              case Opcode::SyncStore:
              case Opcode::SyncStoreI: {
                const Addr a = ea();
                const Value v =
                    i.op == Opcode::SyncStore ? ps.regs[i.b] : i.imm;
                MemOp op = makeOp(OpKind::Write, true, false, true, a,
                                  v);
                op.taintedValue =
                    i.op == Opcode::SyncStore && ps.taintOf(i.b);
                op.id = static_cast<OpId>(res.ops.size());
                const WriteResult w = model->writeSync(
                    pid, a, v, op.id, /*release=*/true);
                cost += w.cost;
                op.tick = ps.cycles + cost;
                record(op);
                break;
              }
              case Opcode::Fence:
                cost += model->fence(pid);
                break;
              case Opcode::FenceSS:
                cost += model->fenceStoreStore(pid);
                break;

              case Opcode::Branch:
                if (ps.taintOf(i.a))
                    ps.tainted = true; // control divergence
                if (ps.regs[i.a] != 0)
                    next_pc = i.target;
                break;
              case Opcode::BranchZ:
                if (ps.taintOf(i.a))
                    ps.tainted = true;
                if (ps.regs[i.a] == 0)
                    next_pc = i.target;
                break;
              case Opcode::Jump:
                next_pc = i.target;
                break;
              case Opcode::Halt:
                ps.halted = true;
                break;
            }

            ps.cycles += cost;
            ps.pc = next_pc;
            ++res.steps;
        }

        if (ps.halted) {
            runnable.erase(std::find(runnable.begin(), runnable.end(),
                                     pid));
            if (opts.sink)
                opts.sink->onHalt(pid);
        }

        while (nextDrain < drains.size() &&
               drains[nextDrain].afterPick <= res.stepOrder.size()) {
            model->drainAddr(drains[nextDrain].proc,
                             drains[nextDrain].addr);
            ++nextDrain;
        }

        model->tick(rng);
    }

    model->drainAll();
    res.visibilityOrder = model->visibilityOrder();
    res.completed = runnable.empty();
    if (!res.completed) {
        warn("execution hit maxSteps=%llu before all threads halted",
             static_cast<unsigned long long>(opts.maxSteps));
    }

    static obs::Counter cRuns = obs::counter("sim.executions");
    static obs::Counter cOps = obs::counter("sim.ops");
    static obs::Counter cStale = obs::counter("sim.stale_reads");
    cRuns.add(1);
    cOps.add(res.ops.size());
    cStale.add(res.staleReads);

    res.procCycles.resize(nprocs);
    res.finalRegs.resize(nprocs);
    for (ProcId p = 0; p < nprocs; ++p) {
        res.procCycles[p] = procs[p].cycles;
        res.totalCycles = std::max(res.totalCycles, procs[p].cycles);
        res.finalRegs[p] = procs[p].regs;
    }

    Addr max_addr = prog.memWords();
    for (const auto &op : res.ops)
        max_addr = std::max(max_addr, op.addr + 1);
    res.finalMemory.resize(max_addr, 0);
    for (Addr a = 0; a < max_addr; ++a)
        res.finalMemory[a] = model->globalValue(a);

    return res;
}

ExecutionResult
runProgram(const Program &prog, const ExecOptions &opts)
{
    Executor ex;
    return ex.run(prog, opts);
}

} // namespace wmr
