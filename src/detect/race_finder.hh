/**
 * @file
 * Enumeration of the races of a traced execution.
 *
 * Candidate pairs are generated per address (only events whose
 * READ/WRITE sets or sync operation touch a common word can race),
 * filtered by processor (same-processor events are always po-ordered)
 * and then by the hb1 reachability oracle.
 *
 * The enumeration can run on multiple threads: the per-address
 * accessor lists are sharded into contiguous, cost-balanced address
 * ranges, each shard enumerates its candidates with a thread-local
 * pair-dedupe table (which also memoizes hb1-ORDERED pairs, so a pair
 * conflicting on many addresses consults the reachability oracle
 * once, not once per address), and the shard outputs are merged and
 * canonicalized (sort by event pair, sorted/deduped address lists) —
 * making the result byte-identical at every thread count.
 */

#ifndef WMR_DETECT_RACE_FINDER_HH
#define WMR_DETECT_RACE_FINDER_HH

#include <cstdint>
#include <vector>

#include "detect/race.hh"
#include "hb/reachability.hh"
#include "trace/execution_trace.hh"

namespace wmr {

/** Options of the race enumeration. */
struct RaceFinderOptions
{
    /**
     * Also report sync-sync conflicting unordered pairs (general
     * races that are NOT data races, Def. 2.4).  Off by default; the
     * paper's method reports data races.
     */
    bool includeSyncSyncRaces = false;
};

/** Work counters of one findRaces() call (summed over shards). */
struct RaceFinderStats
{
    /** Address shards actually enumerated in parallel. */
    unsigned shards = 1;

    /** Addresses with at least one writing accessor. */
    std::uint64_t indexedAddrs = 0;

    /** Candidate pairs considered (after the self-pair filter). */
    std::uint64_t candidatePairs = 0;

    /** Pairs answered by the per-shard dedupe/memo table. */
    std::uint64_t memoHits = 0;

    /** reach.ordered() oracle queries actually issued. */
    std::uint64_t reachQueries = 0;

    /** Distinct pairs the oracle found hb1-ordered (memoized). */
    std::uint64_t orderedPairs = 0;
};

/**
 * Enumerate the races of @p trace under the hb1 order @p reach.
 * Pairs are deduplicated across addresses; each returned race lists
 * every conflicting location of its event pair.
 *
 * @p threads shards the candidate enumeration (0 = hardware
 * concurrency); the returned vector is byte-identical for every
 * value.  @p stats, when non-null, receives the work counters.
 */
std::vector<DataRace> findRaces(const ExecutionTrace &trace,
                                const ReachabilityIndex &reach,
                                const RaceFinderOptions &opts = {},
                                unsigned threads = 1,
                                RaceFinderStats *stats = nullptr);

} // namespace wmr

#endif // WMR_DETECT_RACE_FINDER_HH
