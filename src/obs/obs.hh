/**
 * @file
 * Process-wide observability: one counter/gauge registry and one
 * span collector for the whole record -> salvage -> analyze ->
 * report pipeline.
 *
 * Before this layer existed the repo had three disconnected stats
 * mechanisms (RtStats in src/rt, AnalysisStats in src/detect, the
 * batch metrics of src/pipeline), each rolling its own accumulation
 * and its own sink.  They now all publish through here:
 *
 *  - Counters/gauges: a LOCK-FREE fixed-capacity registry (CAS-claimed
 *    slots, same idiom as rt/sync_registry.hh).  Handles are cheap
 *    relaxed atomics; registration is wait-free on the reader side
 *    and lock-free on insert.  A full table degrades to no-op
 *    handles, counted in `obs.registry_full` — never a crash.
 *
 *  - Spans: RAII scopes forming a per-thread span tree with
 *    steady-clock timestamps.  When observability is DISABLED (the
 *    default) a span costs one inlined relaxed load and a branch —
 *    target <1% overhead, verified by bench/bench_obs_overhead.
 *
 *  - StagedSpan: the unification shim.  The per-run stat structs
 *    (AnalysisStats seconds, the batch StageSeconds) are filled by
 *    this ONE timing helper instead of bespoke Clock::now() pairs,
 *    and the same scope doubles as a span when collection is on.
 *
 * Activation (see docs/OBSERVABILITY.md):
 *   WMR_OBS=1              collect; counter summary to stderr at exit
 *   WMR_OBS=chrome:PATH    collect; Chrome trace_event JSON at exit
 *   WMR_OBS=jsonl:PATH     collect; JSON-lines at exit
 *   wmrace check|batch|record --trace-out FILE
 *                          collect; Chrome trace written by the CLI
 *
 * Span timestamps are steady-clock and never reach the analysis
 * reports: enabling observability cannot change a single report
 * byte (tests/test_obs.cc proves it at several thread counts).
 */

#ifndef WMR_OBS_OBS_HH
#define WMR_OBS_OBS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace wmr::obs {

namespace detail {
extern std::atomic<bool> gEnabled;
} // namespace detail

/** @return whether span/counter collection is on (inlined relaxed
 *  load — the whole disabled-mode cost). */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/** Turn collection on/off (spans recorded only while on). */
void setEnabled(bool on);

// ---------------------------------------------------------------
// Counters and gauges.
// ---------------------------------------------------------------

/**
 * Handle to one registered counter/gauge cell.  Copyable, trivially
 * cheap; a null handle (registry full) no-ops every operation.
 * Counter updates are live even when enabled() is false — they are
 * single relaxed atomics, and the registry snapshot is the one
 * process-wide stats sink.
 */
class Counter
{
  public:
    Counter() = default;

    void
    add(std::uint64_t n)
    {
        if (cell_)
            cell_->fetch_add(n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    /** Gauge-style overwrite (last writer wins). */
    void
    set(std::uint64_t v)
    {
        if (cell_)
            cell_->store(v, std::memory_order_relaxed);
    }

    /** Gauge-style maximum (e.g. peak queue depth). */
    void
    max(std::uint64_t v)
    {
        if (!cell_)
            return;
        std::uint64_t cur =
            cell_->load(std::memory_order_relaxed);
        while (cur < v &&
               !cell_->compare_exchange_weak(
                   cur, v, std::memory_order_relaxed)) {
        }
    }

    std::uint64_t
    value() const
    {
        return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
    }

    bool valid() const { return cell_ != nullptr; }

  private:
    friend Counter counter(const char *);
    friend Counter gauge(const char *);
    std::atomic<std::uint64_t> *cell_ = nullptr;
};

/**
 * Find-or-create the counter named @p name (registered names live
 * for the process).  Lock-free: a CAS claims an empty slot; losing a
 * race retries on the winner's slot.  Callers on hot paths should
 * cache the handle (e.g. in a function-local static).
 */
Counter counter(const char *name);

/** Same cell namespace, exported as a point-in-time gauge. */
Counter gauge(const char *name);

/** One registry entry at snapshot time. */
struct CounterSample
{
    std::string name;
    std::uint64_t value = 0;
    bool isGauge = false;
};

/** @return every registered counter/gauge, sorted by name. */
std::vector<CounterSample> counterSnapshot();

// ---------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------

/** One finished span as the exporters see it. */
struct SpanSample
{
    std::string name;
    std::string detail;      ///< optional annotate() payload
    std::uint64_t startNs = 0; ///< steady-clock, process-relative
    std::uint64_t durNs = 0;
    std::uint32_t depth = 0; ///< nesting depth inside its thread
};

/** One thread's span log at snapshot time. */
struct ThreadSample
{
    std::uint32_t tid = 0; ///< dense obs-assigned thread id
    std::string name;      ///< setThreadName(), "" if never named
    std::vector<SpanSample> spans;
};

/** @return every thread's finished spans (threads sorted by tid). */
std::vector<ThreadSample> spanSnapshot();

/** Name the calling thread in exports ("batch.worker.3"). */
void setThreadName(const std::string &name);

/** Steady-clock ns since the obs epoch (first use in the process). */
std::uint64_t nowNs();

/**
 * RAII scoped span.  Construction with collection disabled is one
 * relaxed load + branch; with it enabled, begin/end record into the
 * calling thread's log.  @p name must have static storage duration
 * (string literals — see the naming convention in
 * docs/OBSERVABILITY.md).
 */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (enabled())
            begin(name);
    }

    ~Span()
    {
        if (log_)
            end();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a free-form detail string (shown as an arg in the
     *  Chrome trace).  No-op when the span is not recording. */
    void
    annotate(const std::string &detail)
    {
        if (log_)
            detail_ = detail;
    }

    bool recording() const { return log_ != nullptr; }

  private:
    void begin(const char *name); // out of line (cold)
    void end();                   // out of line (cold)

    void *log_ = nullptr; ///< ThreadLog*, null when not recording
    const char *name_ = nullptr;
    std::string detail_;
    std::uint64_t startNs_ = 0;
    std::uint32_t depth_ = 0;
};

/**
 * The stage-timing shim every stats struct now goes through: always
 * accumulates elapsed seconds into @p sink (AnalysisStats and the
 * batch StageSeconds need their numbers with observability off too),
 * and doubles as a Span while collection is on.
 */
class StagedSpan
{
  public:
    StagedSpan(const char *name, double &sink)
        : sink_(sink), span_(name),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~StagedSpan()
    {
        sink_ += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    }

    StagedSpan(const StagedSpan &) = delete;
    StagedSpan &operator=(const StagedSpan &) = delete;

    void annotate(const std::string &d) { span_.annotate(d); }

  private:
    double &sink_;
    Span span_;
    std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------
// Lifecycle / test support.
// ---------------------------------------------------------------

/**
 * Drop every recorded span and zero every registered counter (the
 * cells stay registered; live handles remain valid).  Test isolation
 * only — never needed in production.
 */
void resetForTest();

/** How many registrations the fixed table had to turn away. */
std::uint64_t registryOverflows();

} // namespace wmr::obs

#endif // WMR_OBS_OBS_HH
