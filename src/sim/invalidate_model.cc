#include "sim/invalidate_model.hh"

#include "common/logging.hh"

namespace wmr {

std::string_view
realizationName(Realization realization)
{
    switch (realization) {
      case Realization::StoreBuffer: return "store-buffer";
      case Realization::Invalidate: return "invalidate";
    }
    panic("realizationName: bad value %d",
          static_cast<int>(realization));
}

std::unique_ptr<MemoryModel>
makeModelOf(Realization realization, ModelKind kind, ProcId procs,
            Addr words, const CostParams &cost, double drainLaziness)
{
    if (realization == Realization::StoreBuffer)
        return makeModel(kind, procs, words, cost, drainLaziness);
    return std::make_unique<InvalidateModel>(policyFor(kind), procs,
                                             words, cost,
                                             drainLaziness);
}

InvalidateModel::InvalidateModel(ModelPolicy policy, ProcId procs,
                                 Addr words, const CostParams &cost,
                                 double drainLaziness)
    : policy_(policy), cost_(cost), drainLaziness_(drainLaziness),
      memory_(words, 0), lastWriter_(words, kNoOp),
      shadowWriter_(words, kNoOp), caches_(procs), inbox_(procs)
{
}

void
InvalidateModel::ensureAddr(Addr addr)
{
    if (addr >= memory_.size()) {
        memory_.resize(addr + 1, 0);
        lastWriter_.resize(addr + 1, kNoOp);
        shadowWriter_.resize(addr + 1, kNoOp);
    }
}

void
InvalidateModel::broadcastInval(ProcId from, Addr addr)
{
    if (policy_.noBuffer) {
        // SC: invalidations apply instantly.
        for (ProcId p = 0; p < caches_.size(); ++p) {
            if (p != from)
                caches_[p].erase(addr);
        }
        return;
    }
    for (ProcId p = 0; p < caches_.size(); ++p) {
        if (p != from && caches_[p].count(addr))
            inbox_[p].push_back(addr);
    }
}

std::size_t
InvalidateModel::flushInbox(ProcId proc)
{
    auto &box = inbox_[proc];
    const std::size_t n = box.size();
    for (const Addr a : box)
        caches_[proc].erase(a);
    box.clear();
    return n;
}

Tick
InvalidateModel::flushCost(std::size_t n) const
{
    if (n == 0)
        return 0;
    if (policy_.pipelinedDrain)
        return cost_.writeLatency + (n - 1) * cost_.drainPipelined;
    return n * cost_.writeLatency;
}

ReadResult
InvalidateModel::readData(ProcId proc, Addr addr)
{
    ensureAddr(addr);
    ReadResult r;
    r.cost = cost_.readLatency;
    const auto it = caches_[proc].find(addr);
    if (it != caches_[proc].end()) {
        // Cache hit — possibly a stale copy whose invalidation still
        // sits in the inbox.
        r.value = it->second.value;
        r.observedWrite = it->second.writer;
    } else {
        r.value = memory_[addr];
        r.observedWrite = lastWriter_[addr];
        caches_[proc][addr] = {r.value, r.observedWrite};
        r.cost += cost_.readLatency; // miss penalty
    }
    r.stale = (r.observedWrite != shadowWriter_[addr]);
    return r;
}

WriteResult
InvalidateModel::writeData(ProcId proc, Addr addr, Value value, OpId id)
{
    ensureAddr(addr);
    shadowWriter_[addr] = id;
    memory_[addr] = value;
    lastWriter_[addr] = id;
    if (id != kNoOp)
        visibility_.push_back(id);
    caches_[proc][addr] = {value, id};
    broadcastInval(proc, addr);
    WriteResult w;
    // Write-through: the writer retires as soon as the line is owned
    // locally; SC instead stalls for global completion.
    w.cost = policy_.noBuffer ? cost_.writeLatency
                              : cost_.bufferInsert;
    return w;
}

ReadResult
InvalidateModel::readSync(ProcId proc, Addr addr, bool acquire)
{
    ensureAddr(addr);
    Tick extra = 0;
    if (!policy_.noBuffer &&
        (acquire || policy_.drainOnAllSync)) {
        // Acquires (and, on WO/DRF0, every sync op) apply all pending
        // invalidations so subsequent reads are fresh.
        extra = flushCost(flushInbox(proc));
    }
    ReadResult r;
    r.value = memory_[addr];
    r.observedWrite = lastWriter_[addr];
    r.stale = (r.observedWrite != shadowWriter_[addr]);
    r.cost = cost_.syncAccess + extra;
    return r;
}

WriteResult
InvalidateModel::writeSync(ProcId proc, Addr addr, Value value, OpId id,
                           bool release)
{
    ensureAddr(addr);
    Tick extra = 0;
    if (!policy_.noBuffer && policy_.drainOnAllSync) {
        extra = flushCost(flushInbox(proc));
    }
    // A release models waiting for the delivery acknowledgement of
    // all previously issued invalidations; in this write-through
    // design the queues already hold them, so only the cost remains.
    if (!policy_.noBuffer && release && policy_.drainOnRelease)
        extra += cost_.syncAccess;
    shadowWriter_[addr] = id;
    memory_[addr] = value;
    lastWriter_[addr] = id;
    if (id != kNoOp)
        visibility_.push_back(id);
    caches_[proc][addr] = {value, id};
    broadcastInval(proc, addr);
    WriteResult w;
    w.cost = (policy_.noBuffer ? cost_.writeLatency
                               : cost_.syncAccess) +
             extra;
    return w;
}

Tick
InvalidateModel::fence(ProcId proc)
{
    if (policy_.noBuffer)
        return 1;
    return flushCost(flushInbox(proc)) + 1;
}

Tick
InvalidateModel::fenceStoreStore(ProcId proc)
{
    // Write-through memory makes every store visible at issue, so
    // store-store order always holds; nothing to do.
    (void)proc;
    return 1;
}

void
InvalidateModel::tick(Rng &rng)
{
    if (policy_.noBuffer)
        return;
    for (ProcId p = 0; p < inbox_.size(); ++p) {
        auto &box = inbox_[p];
        if (box.empty())
            continue;
        if (rng.chance(drainLaziness_))
            continue;
        // TSO delivers invalidations in send order (the store buffer
        // behind them is FIFO); other models deliver randomly.
        const std::size_t idx =
            policy_.fifoDrain ? 0 : rng.below(box.size());
        caches_[p].erase(box[idx]);
        box.erase(box.begin() + static_cast<std::ptrdiff_t>(idx));
    }
}

void
InvalidateModel::drainAll()
{
    for (ProcId p = 0; p < inbox_.size(); ++p)
        flushInbox(p);
}

void
InvalidateModel::drainAddr(ProcId proc, Addr addr)
{
    // Directive semantics mirror the buffer model: make proc's write
    // to addr globally "complete" — here, apply addr's invalidations
    // at every OTHER processor ("proc" is the writer).
    for (ProcId p = 0; p < inbox_.size(); ++p) {
        if (p == proc)
            continue;
        auto &box = inbox_[p];
        for (std::size_t i = 0; i < box.size();) {
            if (box[i] == addr) {
                caches_[p].erase(addr);
                box.erase(box.begin() +
                          static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    }
}

std::size_t
InvalidateModel::pendingStores(ProcId proc) const
{
    // Interface reuse: "pending work" = undelivered invalidations in
    // this processor's inbox.
    return inbox_.at(proc).size();
}

Value
InvalidateModel::globalValue(Addr addr) const
{
    return addr < memory_.size() ? memory_[addr] : 0;
}

} // namespace wmr
