/**
 * @file
 * ASCII timeline rendering of an execution — the per-processor
 * column layout the paper's figures use (operations flowing down,
 * one column per processor, so1 pairings annotated).
 */

#ifndef WMR_TRACE_TIMELINE_HH
#define WMR_TRACE_TIMELINE_HH

#include <string>

#include "prog/program.hh"
#include "trace/execution_trace.hh"

namespace wmr {

/** Rendering options. */
struct TimelineOptions
{
    /** Column width per processor. */
    std::size_t columnWidth = 24;

    /** Render individual operations of computation events (up to
     *  this many per event; 0 = one summary line per event). */
    std::size_t opsPerEvent = 3;

    /** Mark the end of the base SC prefix. */
    bool markScpBoundary = true;
};

/**
 * Render @p trace as per-processor columns in event (issue) order.
 * When @p res is supplied, individual operations with values are
 * shown (Figure 2(b)'s "op(x,a)" notation); otherwise event
 * summaries.
 */
std::string renderTimeline(const ExecutionTrace &trace,
                           const Program *prog = nullptr,
                           const ExecutionResult *res = nullptr,
                           const TimelineOptions &opts = {});

} // namespace wmr

#endif // WMR_TRACE_TIMELINE_HH
