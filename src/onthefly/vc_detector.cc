#include "onthefly/vc_detector.hh"

namespace wmr {

VcDetector::VcDetector(ProcId nprocs, Addr words,
                       const VcDetectorOptions &opts)
    : ClockedDetectorBase(nprocs, opts.maxPublishedClocks), opts_(opts)
{
    locs_.resize(words);
    stats_.metadataBytes =
        static_cast<std::uint64_t>(words) * sizeof(LocState) +
        static_cast<std::uint64_t>(nprocs) * nprocs * 8;
}

VcDetector::LocState &
VcDetector::loc(Addr addr)
{
    if (addr >= locs_.size()) {
        locs_.resize(addr + 1);
        stats_.metadataBytes = static_cast<std::uint64_t>(
                                   locs_.size()) *
                               sizeof(LocState);
    }
    LocState &l = locs_[addr];
    if (opts_.trackAllReaders && l.readTs.empty()) {
        l.readTs.assign(nprocs_, 0);
        l.readPc.assign(nprocs_, 0);
    }
    return l;
}

void
VcDetector::onOp(const MemOp &op)
{
    ++stats_.opsProcessed;
    if (op.sync) {
        LocState &l = loc(op.addr);
        if (op.kind == OpKind::Read)
            handleAcquire(op, l.syncFallback);
        else
            handleRelease(op, l.syncFallback);
    } else {
        if (op.kind == OpKind::Read)
            dataRead(op);
        else
            dataWrite(op);
    }
    procClock_[op.proc].tick(op.proc);
}

void
VcDetector::dataRead(const MemOp &op)
{
    LocState &l = loc(op.addr);
    VectorClock &c = procClock_[op.proc];

    // Write-read race: the last writer must be ordered before us.
    if (l.written && l.lastWriterProc != op.proc) {
        ++stats_.clockJoins;
        if (!l.lastWrite.lessOrEqual(c)) {
            report({l.lastWriterProc, l.lastWriterPc, op.proc, op.pc,
                    op.addr, op.id,
                    l.lastWrite.get(l.lastWriterProc),
                    c.get(op.proc)});
        }
    }

    if (opts_.trackAllReaders) {
        l.readTs[op.proc] = c.get(op.proc);
        l.readPc[op.proc] = op.pc;
    } else {
        l.lastReaderProc = op.proc;
        l.lastReaderTs = c.get(op.proc);
        l.lastReaderPc = op.pc;
    }
}

void
VcDetector::dataWrite(const MemOp &op)
{
    LocState &l = loc(op.addr);
    VectorClock &c = procClock_[op.proc];

    if (l.written && l.lastWriterProc != op.proc) {
        ++stats_.clockJoins;
        if (!l.lastWrite.lessOrEqual(c)) {
            report({l.lastWriterProc, l.lastWriterPc, op.proc, op.pc,
                    op.addr, op.id,
                    l.lastWrite.get(l.lastWriterProc),
                    c.get(op.proc)});
        }
    }

    if (opts_.trackAllReaders) {
        for (ProcId p = 0; p < nprocs_; ++p) {
            if (p == op.proc || l.readTs[p] == 0)
                continue;
            ++stats_.epochChecks;
            if (!c.epochLeq(p, l.readTs[p])) {
                report({p, l.readPc[p], op.proc, op.pc, op.addr,
                        op.id, l.readTs[p], c.get(op.proc)});
            }
        }
    } else if (l.lastReaderProc != kNoProc &&
               l.lastReaderProc != op.proc) {
        ++stats_.epochChecks;
        if (!c.epochLeq(l.lastReaderProc, l.lastReaderTs)) {
            report({l.lastReaderProc, l.lastReaderPc, op.proc, op.pc,
                    op.addr, op.id, l.lastReaderTs,
                    c.get(op.proc)});
        }
    }

    l.written = true;
    l.lastWrite = c;
    l.lastWriterProc = op.proc;
    l.lastWriterPc = op.pc;
    ++stats_.clockAllocations;
}

} // namespace wmr
