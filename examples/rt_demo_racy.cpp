/**
 * @file
 * Runtime-tracer demo with a seeded annotation-level race: the
 * deposit loop holds the real mutex but never TELLS the tracer, so
 * the recorded execution contains concurrent conflicting accesses to
 * the account — the "missed synchronization" bug class.  See
 * rt_demo_shared.hh for modes and docs/RUNTIME.md for the workflow.
 */

#include "rt_demo_shared.hh"

int
main(int argc, char **argv)
{
    return rtdemo::demoMain(argc, argv, /*annotateLocks=*/false,
                            "rt_demo_racy.trace");
}
