#include "trace/event.hh"

namespace wmr {

bool
eventsConflict(const Event &a, const Event &b)
{
    if (a.kind == EventKind::Sync && b.kind == EventKind::Sync) {
        return conflict(a.syncOp, b.syncOp);
    }
    if (a.kind == EventKind::Sync)
        return eventsConflict(b, a);

    // a is a computation event.
    if (b.kind == EventKind::Sync) {
        const Addr addr = b.syncOp.addr;
        if (b.syncOp.kind == OpKind::Write)
            return a.readSet.test(addr) || a.writeSet.test(addr);
        return a.writeSet.test(addr);
    }

    // Both computation: W-W, W-R or R-W overlap.
    return a.writeSet.intersects(b.writeSet) ||
           a.writeSet.intersects(b.readSet) ||
           a.readSet.intersects(b.writeSet);
}

std::vector<Addr>
conflictAddrs(const Event &a, const Event &b)
{
    std::vector<Addr> out;
    if (a.kind == EventKind::Sync && b.kind == EventKind::Sync) {
        if (conflict(a.syncOp, b.syncOp))
            out.push_back(a.syncOp.addr);
        return out;
    }
    if (a.kind == EventKind::Sync)
        return conflictAddrs(b, a);

    if (b.kind == EventKind::Sync) {
        const Addr addr = b.syncOp.addr;
        if (b.syncOp.kind == OpKind::Write
                ? (a.readSet.test(addr) || a.writeSet.test(addr))
                : a.writeSet.test(addr)) {
            out.push_back(addr);
        }
        return out;
    }

    DenseBitset ww = a.writeSet;
    ww &= b.writeSet;
    DenseBitset wr = a.writeSet;
    wr &= b.readSet;
    DenseBitset rw = a.readSet;
    rw &= b.writeSet;
    ww |= wr;
    ww |= rw;
    for (const auto addr : ww.toVector())
        out.push_back(addr);
    return out;
}

} // namespace wmr
