#include "common/hash64.hh"

#include "common/crc32.hh"

namespace wmr {

namespace {

/** Compile-time per-byte bit-reversal table: the fixed GF(2)
 *  permutation that decorrelates the high CRC stream from the low. */
struct BitReverseTable
{
    std::uint8_t rev[256];

    constexpr BitReverseTable() : rev()
    {
        for (unsigned b = 0; b < 256; ++b) {
            std::uint8_t r = 0;
            for (unsigned bit = 0; bit < 8; ++bit) {
                if (b & (1u << bit))
                    r |= static_cast<std::uint8_t>(
                        1u << (7 - bit));
            }
            rev[b] = r;
        }
    }
};

constexpr BitReverseTable kBitRev;

} // namespace

void
ContentHash::update(const void *data, std::size_t n)
{
    lo_ = crc32Update(lo_, data, n);
    len_ += n;

    // The high stream sees every byte bit-reversed; transform in
    // small stack chunks so streaming callers never allocate.
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint8_t chunk[256];
    while (n > 0) {
        const std::size_t take = n < sizeof(chunk) ? n : sizeof(chunk);
        for (std::size_t i = 0; i < take; ++i)
            chunk[i] = kBitRev.rev[p[i]];
        hi_ = crc32Update(hi_, chunk, take);
        p += take;
        n -= take;
    }
}

std::uint64_t
ContentHash::finish() const
{
    const std::uint32_t lo = crc32Final(lo_);

    // Finish the high stream over the finalized low word and the
    // length so equal-prefix streams of different shapes split.
    std::uint8_t tail[12];
    for (int i = 0; i < 4; ++i)
        tail[i] = static_cast<std::uint8_t>(lo >> (8 * i));
    for (int i = 0; i < 8; ++i)
        tail[4 + i] = static_cast<std::uint8_t>(len_ >> (8 * i));
    const std::uint32_t hi =
        crc32Final(crc32Update(hi_, tail, sizeof(tail)));

    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

std::uint64_t
contentHash64(const void *data, std::size_t n)
{
    ContentHash h;
    h.update(data, n);
    return h.finish();
}

std::string
hash64Hex(std::uint64_t digest)
{
    static const char *hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = hex[digest & 0xf];
        digest >>= 4;
    }
    return out;
}

} // namespace wmr
