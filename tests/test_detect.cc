/**
 * @file
 * Unit tests of the detection pipeline: race enumeration, augmented
 * graph, partitions and partition order, first partitions, SCP
 * classification, Condition 3.4 checking, and report formatting.
 */

#include <gtest/gtest.h>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "prog/builder.hh"
#include "sim/executor.hh"
#include "trace/trace_io.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

DetectionResult
analyze(const Program &p, ModelKind model = ModelKind::SC,
        std::uint64_t seed = 3, double laziness = 0.5)
{
    ExecOptions opts;
    opts.model = model;
    opts.seed = seed;
    opts.drainLaziness = laziness;
    return analyzeExecution(runProgram(p, opts));
}

TEST(RaceFinder, Figure1aHasExactlyOneDataRace)
{
    const auto det = analyze(figure1a());
    ASSERT_EQ(det.races().size(), 1u);
    const auto &r = det.races()[0];
    EXPECT_TRUE(r.isDataRace);
    // Conflicts on both x (0) and y (1).
    EXPECT_EQ(r.addrs, (std::vector<Addr>{0, 1}));
    EXPECT_EQ(det.partitions().firstPartitions.size(), 1u);
}

TEST(RaceFinder, Figure1bIsRaceFree)
{
    for (const auto kind : kAllModels) {
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            const auto det = analyze(figure1b(), kind, seed, 0.9);
            EXPECT_TRUE(det.races().empty())
                << modelName(kind) << " seed " << seed;
            EXPECT_TRUE(det.partitions().firstPartitions.empty());
        }
    }
}

TEST(RaceFinder, SameProcNeverRaces)
{
    // One processor writing the same word twice: no race.
    ThreadBuilder t;
    t.storei(0, 1).unset(5).storei(0, 2).halt();
    ProgramBuilder pb;
    pb.thread(t);
    const auto det = analyze(pb.build());
    EXPECT_TRUE(det.races().empty());
}

TEST(RaceFinder, ReadReadDoesNotRace)
{
    ProgramBuilder pb;
    pb.var("x", 0, 5);
    ThreadBuilder a, b;
    a.load(1, 0).halt();
    b.load(1, 0).halt();
    pb.thread(a).thread(b);
    const auto det = analyze(pb.build());
    EXPECT_TRUE(det.races().empty());
}

TEST(RaceFinder, SyncDataConflictIsDataRace)
{
    // P0 writes x with a DATA store; P1 Unsets x (sync write): the
    // pair conflicts, one op is data -> data race (Def. 2.4).
    ProgramBuilder pb;
    pb.var("x", 0, 1);
    ThreadBuilder a, b;
    a.storei(0, 7).halt();
    b.unset(0).halt();
    pb.thread(a).thread(b);
    const auto det = analyze(pb.build());
    ASSERT_EQ(det.races().size(), 1u);
    EXPECT_TRUE(det.races()[0].isDataRace);
}

TEST(RaceFinder, SyncSyncRaceExcludedByDefault)
{
    // Two processors Unset the same location with no ordering: a
    // general race but NOT a data race.
    ProgramBuilder pb;
    pb.var("s", 0, 1);
    ThreadBuilder a, b;
    a.unset(0).halt();
    b.unset(0).halt();
    pb.thread(a).thread(b);

    const auto res = runProgram(pb.build(), {.model = ModelKind::SC});
    const auto det = analyzeExecution(res);
    EXPECT_TRUE(det.races().empty());

    AnalysisOptions opts;
    opts.finder.includeSyncSyncRaces = true;
    const auto det2 = analyzeExecution(res, opts);
    ASSERT_EQ(det2.races().size(), 1u);
    EXPECT_FALSE(det2.races()[0].isDataRace);
    EXPECT_FALSE(det2.anyDataRace());
    // General races alone produce no reportable first partitions.
    EXPECT_TRUE(det2.partitions().firstPartitions.empty());
}

TEST(RaceFinder, LockedAccessesDoNotRace)
{
    const auto det = analyze(lockedCounter(3, 4), ModelKind::WO, 7);
    EXPECT_TRUE(det.races().empty());
}

TEST(RaceFinder, RacyCounterRaces)
{
    const auto det =
        analyze(lockedCounter(2, 3, /*racy=*/true), ModelKind::SC);
    EXPECT_FALSE(det.races().empty());
    EXPECT_TRUE(det.anyDataRace());
}

// Two independent races, one ordered after the other through po:
// the second is affected by the first and must not be first.
Program
chainedRaces()
{
    ProgramBuilder pb;
    pb.var("a", 0).var("c", 1).var("dummy", 2, 1);
    ThreadBuilder p0, p1, p2;
    p0.storei(0, 1).halt();                       // write a
    p1.load(1, 0)                                 // read a   (race 1)
      .unset(2)                                   // split events
      .storei(1, 1)                               // write c  (race 2)
      .halt();
    p2.load(1, 1).halt();                         // read c
    pb.thread(p0).thread(p1).thread(p2);
    return pb.build();
}

TEST(Partitions, AffectedRaceIsNotFirst)
{
    // Scripted order: P0 and P1 race on a, then P1 writes c, P2
    // reads c.  Any order works for race detection (hb1 does not
    // depend on the interleaving here).
    const auto det = analyze(chainedRaces());
    ASSERT_EQ(det.races().size(), 2u);
    ASSERT_EQ(det.partitions().partitions.size(), 2u);
    EXPECT_EQ(det.partitions().firstPartitions.size(), 1u);

    // The first partition is the one racing on address 0 (a).
    const auto &first =
        det.partitions()
            .partitions[det.partitions().firstPartitions[0]];
    ASSERT_EQ(first.races.size(), 1u);
    EXPECT_EQ(det.races()[first.races[0]].addrs,
              std::vector<Addr>{0});
    // And the reported set excludes the race on c.
    const auto reported = det.reportedRaces();
    ASSERT_EQ(reported.size(), 1u);
    EXPECT_EQ(det.races()[reported[0]].addrs, std::vector<Addr>{0});
}

TEST(Partitions, MutuallyAffectingRacesShareAPartition)
{
    // P0: write a ... read b;  P1: write b ... read a.
    // Each race's endpoint po-reaches the other race's endpoint in
    // both directions -> one SCC -> one partition.
    ProgramBuilder pb;
    pb.var("a", 0).var("b", 1).var("d0", 2, 1).var("d1", 3, 1);
    ThreadBuilder p0, p1;
    p0.storei(0, 1).unset(2).load(1, 1).halt();
    p1.storei(1, 1).unset(3).load(1, 0).halt();
    pb.thread(p0).thread(p1);
    const auto det = analyze(pb.build());
    ASSERT_EQ(det.races().size(), 2u);
    EXPECT_EQ(det.partitions().partitions.size(), 1u);
    EXPECT_EQ(det.partitions().firstPartitions.size(), 1u);
    EXPECT_EQ(det.reportedRaces().size(), 2u);
}

TEST(Partitions, Theorem41BothDirections)
{
    // No data races <-> no first partitions with data races.
    const auto clean = analyze(figure1b());
    EXPECT_FALSE(clean.anyDataRace());
    EXPECT_TRUE(clean.partitions().firstPartitions.empty());

    const auto racy = analyze(figure1a());
    EXPECT_TRUE(racy.anyDataRace());
    EXPECT_FALSE(racy.partitions().firstPartitions.empty());

    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const auto det = analyze(randomRacyProgram(seed), ModelKind::SC,
                                 seed);
        EXPECT_EQ(det.anyDataRace(),
                  !det.partitions().firstPartitions.empty())
            << "seed " << seed;
    }
}

TEST(Augmented, RaceAffectsPoSuccessors)
{
    const auto det = analyze(chainedRaces());
    ASSERT_EQ(det.races().size(), 2u);
    const auto &r1 = det.races()[0].addrs[0] == 0 ? det.races()[0]
                                                  : det.races()[1];
    const auto &r2 = det.races()[0].addrs[0] == 0 ? det.races()[1]
                                                  : det.races()[0];
    EXPECT_TRUE(det.augmented().raceAffectsRace(r1, r2));
    EXPECT_FALSE(det.augmented().raceAffectsRace(r2, r1));
    // A race affects its own endpoints (Def. 3.3(1)).
    EXPECT_TRUE(det.augmented().raceAffectsEvent(r1, r1.a));
    EXPECT_TRUE(det.augmented().raceAffectsEvent(r1, r1.b));
}

TEST(Scp, WholeExecutionScWhenNoStaleReads)
{
    const auto det = analyze(figure1a(), ModelKind::SC);
    EXPECT_TRUE(det.scp().wholeExecutionSc);
    ASSERT_EQ(det.races().size(), 1u);
    EXPECT_TRUE(det.scp().raceInScp[0]);
}

TEST(Scp, Condition34HoldsOnWeakExecutions)
{
    // Sweep racy programs on weak models; the simulator must satisfy
    // Condition 3.4: every data race in (or affected by one in) SCP.
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        for (const auto kind :
             {ModelKind::WO, ModelKind::RCsc, ModelKind::DRF0,
              ModelKind::DRF1}) {
            const auto det =
                analyze(randomRacyProgram(seed), kind, seed, 0.9);
            const auto bad = checkCondition34(
                det.races(), det.scp(), det.augmented());
            EXPECT_TRUE(bad.empty())
                << modelName(kind) << " seed " << seed << ": "
                << bad.size() << " uncovered races";
        }
    }
}

TEST(Scp, StaleExecutionHasBoundedPrefix)
{
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 1.0;
        const auto res = runProgram(figure1a(), opts);
        if (res.firstStaleRead == kNoOp)
            continue;
        const auto det = analyzeExecution(res);
        EXPECT_FALSE(det.scp().wholeExecutionSc);
        EXPECT_EQ(det.scp().scpEndOp, res.firstStaleRead);
        return;
    }
    FAIL() << "no stale figure-1a execution found";
}

TEST(Scp, MembershipClassification)
{
    // The staged Figure 2(b) execution: P2 dequeued a stale address
    // and worked on it, so divergent operations exist.
    {
        const auto res =
            stageFigure2bExecution({.regionSize = 6, .staleOffset = 3})
                .result;
        ASSERT_NE(res.firstStaleRead, kNoOp);
        const auto det = analyzeExecution(res);
        const auto &scp = det.scp();
        const auto divergentOps = [&](const Event &ev) {
            std::size_t n = 0, total = 0;
            if (ev.kind == EventKind::Sync) {
                total = 1;
                n = res.ops[ev.syncOp.id].divergent ? 1 : 0;
            } else {
                for (const OpId o : ev.memberOps) {
                    ++total;
                    n += res.ops[o].divergent;
                }
            }
            return std::make_pair(n, total);
        };
        bool sawOutside = false;
        for (const auto &ev : det.trace().events()) {
            const auto [n, total] = divergentOps(ev);
            switch (scp.membership(ev.id)) {
              case ScpMembership::Full:
                EXPECT_EQ(n, 0u);
                break;
              case ScpMembership::Partial:
                EXPECT_GT(n, 0u);
                EXPECT_LT(n, total);
                break;
              case ScpMembership::Outside:
                EXPECT_EQ(n, total);
                EXPECT_GT(total, 0u);
                sawOutside = true;
                break;
            }
            // Nothing before the base boundary is ever divergent.
            if (ev.lastOp < scp.scpEndOp)
                EXPECT_NE(scp.membership(ev.id), ScpMembership::Outside);
        }
        // The stale queue execution has post-SCP work (P2's region
        // loop on the stale address).
        EXPECT_TRUE(sawOutside);
    }
}

TEST(Analysis, TraceFileRoundTripGivesSameVerdict)
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 11;
    const auto res =
        runProgram(figure2Queue({.regionSize = 8}), opts);
    const auto direct = analyzeExecution(res);

    const std::string path = "/tmp/wmr_detect_roundtrip.bin";
    writeTraceFile(buildTrace(res, {.keepMemberOps = true}), path);
    const auto loaded = analyzeTrace(readTraceFile(path));
    std::remove(path.c_str());

    EXPECT_EQ(direct.races().size(), loaded.races().size());
    EXPECT_EQ(direct.partitions().firstPartitions.size(),
              loaded.partitions().firstPartitions.size());
    EXPECT_EQ(direct.anyDataRace(), loaded.anyDataRace());
}

TEST(Report, CleanReportStatesTheorem41)
{
    const auto det = analyze(figure1b());
    const auto text = formatReport(det, nullptr);
    EXPECT_NE(text.find("NO data races detected"), std::string::npos);
    EXPECT_NE(text.find("sequentially consistent"), std::string::npos);
}

TEST(Report, RacyReportNamesVariables)
{
    const Program prog = figure1a();
    const auto det = analyze(prog);
    const auto text = formatReport(det, &prog);
    EXPECT_NE(text.find("first partition"), std::string::npos);
    EXPECT_NE(text.find("x"), std::string::npos);
    EXPECT_NE(text.find("Theorem 4.2"), std::string::npos);
}

TEST(Report, EventDumpRendersMembership)
{
    const auto det = analyze(figure1a());
    ReportOptions ropts;
    ropts.showEvents = true;
    const auto text = formatReport(det, nullptr, ropts);
    EXPECT_NE(text.find("-- events --"), std::string::npos);
    EXPECT_NE(text.find("in-SCP"), std::string::npos);
}

} // namespace
} // namespace wmr
