/**
 * @file
 * Unit tests of the program IR: builder, labels, validation,
 * assembler/disassembler round trips.
 */

#include <gtest/gtest.h>

#include "prog/assembler.hh"
#include "prog/builder.hh"
#include "prog/program.hh"

namespace wmr {
namespace {

TEST(Opcode, SyncClassification)
{
    EXPECT_TRUE(opcodeIsSync(Opcode::TestAndSet));
    EXPECT_TRUE(opcodeIsSync(Opcode::Unset));
    EXPECT_TRUE(opcodeIsSync(Opcode::SyncLoad));
    EXPECT_TRUE(opcodeIsSync(Opcode::SyncStore));
    EXPECT_FALSE(opcodeIsSync(Opcode::Load));
    EXPECT_FALSE(opcodeIsSync(Opcode::Store));
    EXPECT_FALSE(opcodeIsSync(Opcode::Fence));
}

TEST(Opcode, MemoryClassification)
{
    EXPECT_TRUE(opcodeAccessesMemory(Opcode::Load));
    EXPECT_TRUE(opcodeAccessesMemory(Opcode::StoreI));
    EXPECT_TRUE(opcodeAccessesMemory(Opcode::TestAndSet));
    EXPECT_FALSE(opcodeAccessesMemory(Opcode::MovI));
    EXPECT_FALSE(opcodeAccessesMemory(Opcode::Branch));
    EXPECT_FALSE(opcodeAccessesMemory(Opcode::Fence));
}

TEST(Builder, EmitsInstructions)
{
    ThreadBuilder t;
    t.movi(1, 5).load(2, 10).store(11, 2).halt();
    const Thread th = t.build();
    ASSERT_EQ(th.code.size(), 4u);
    EXPECT_EQ(th.code[0].op, Opcode::MovI);
    EXPECT_EQ(th.code[1].op, Opcode::Load);
    EXPECT_EQ(th.code[2].op, Opcode::Store);
    EXPECT_EQ(th.code[3].op, Opcode::Halt);
}

TEST(Builder, ResolvesBackwardLabel)
{
    ThreadBuilder t;
    t.label("top").addi(1, 1, 1).cmplti(2, 1, 3).bnz(2, "top").halt();
    const Thread th = t.build();
    EXPECT_EQ(th.code[2].op, Opcode::Branch);
    EXPECT_EQ(th.code[2].target, 0u);
}

TEST(Builder, ResolvesForwardLabel)
{
    ThreadBuilder t;
    t.bz(1, "end").movi(2, 1).label("end").halt();
    const Thread th = t.build();
    EXPECT_EQ(th.code[0].target, 2u);
}

TEST(Builder, AcquireLockShape)
{
    ThreadBuilder t;
    t.acquireLock(5, 0).halt();
    const Thread th = t.build();
    ASSERT_EQ(th.code.size(), 3u);
    EXPECT_EQ(th.code[0].op, Opcode::TestAndSet);
    EXPECT_EQ(th.code[0].addr, 5u);
    EXPECT_EQ(th.code[1].op, Opcode::Branch);
    EXPECT_EQ(th.code[1].target, 0u); // spin back to the tas
}

TEST(Builder, NoteAttaches)
{
    ThreadBuilder t;
    t.storei(0, 1).note("Write(x)").halt();
    EXPECT_EQ(t.build().code[0].note, "Write(x)");
}

TEST(Program, InitialMemoryDefaultsZero)
{
    Program p;
    p.setInitial(5, 42);
    EXPECT_EQ(p.initial(5), 42);
    EXPECT_EQ(p.initial(6), 0);
}

TEST(Program, MemWordsCoversStaticAddrs)
{
    ProgramBuilder pb;
    ThreadBuilder t;
    t.storei(17, 1).halt();
    pb.thread(t);
    const Program p = pb.build();
    EXPECT_GE(p.memWords(), 18u);
}

TEST(Program, SymbolLookup)
{
    ProgramBuilder pb;
    pb.var("flag", 3, 1);
    ThreadBuilder t;
    t.halt();
    pb.thread(t);
    const Program p = pb.build();
    EXPECT_EQ(p.addrOf("flag"), 3u);
    EXPECT_EQ(p.addrName(3), "flag");
    EXPECT_EQ(p.addrName(9), "[9]");
    EXPECT_EQ(p.initial(3), 1);
}

TEST(Program, DisassembleContainsNotes)
{
    ProgramBuilder pb;
    ThreadBuilder t;
    t.storei(0, 1).note("Write(x)").halt();
    pb.thread(t);
    const std::string text = pb.build().disassembleAll();
    EXPECT_NE(text.find("Write(x)"), std::string::npos);
    EXPECT_NE(text.find("storei"), std::string::npos);
}

TEST(Assembler, BasicProgram)
{
    const Program p = assemble(R"(
        .var x 0
        .var y 1 7
        .thread
            movi r1, 3
            store [x], r1
            load r2, [y]
            halt
        .thread
            storei [y], 9
            halt
    )");
    EXPECT_EQ(p.numProcs(), 2);
    EXPECT_EQ(p.initial(1), 7);
    const auto &c0 = p.thread(0).code;
    ASSERT_EQ(c0.size(), 4u);
    EXPECT_EQ(c0[0].op, Opcode::MovI);
    EXPECT_EQ(c0[1].op, Opcode::Store);
    EXPECT_EQ(c0[1].addr, 0u);
    EXPECT_EQ(c0[2].op, Opcode::Load);
    EXPECT_EQ(c0[2].addr, 1u);
}

TEST(Assembler, LabelsAndBranches)
{
    const Program p = assemble(R"(
        .var s 0 1
        .thread
        spin: tas r0, [s]
            bnz r0, spin
            unset [s]
            halt
    )");
    const auto &code = p.thread(0).code;
    EXPECT_EQ(code[1].op, Opcode::Branch);
    EXPECT_EQ(code[1].target, 0u);
    EXPECT_EQ(code[2].op, Opcode::Unset);
}

TEST(Assembler, IndexedAddressing)
{
    const Program p = assemble(R"(
        .thread
            movi r3, 4
            load r1, [10+r3]
            store [20+r3], r1
            halt
    )");
    const auto &code = p.thread(0).code;
    EXPECT_TRUE(code[1].indexed);
    EXPECT_EQ(code[1].addr, 10u);
    EXPECT_EQ(code[1].a, 3);
    EXPECT_TRUE(code[2].indexed);
}

TEST(Assembler, CommentsAndBlanks)
{
    const Program p = assemble(R"(
        # full-line comment
        .thread
            nop        ; trailing comment
            halt
    )");
    EXPECT_EQ(p.thread(0).code.size(), 2u);
}

TEST(Assembler, SyncOps)
{
    const Program p = assemble(R"(
        .var f 0
        .thread
            syncstorei [f], 1
            syncload r1, [f]
            fence
            halt
    )");
    const auto &code = p.thread(0).code;
    EXPECT_EQ(code[0].op, Opcode::SyncStoreI);
    EXPECT_EQ(code[1].op, Opcode::SyncLoad);
    EXPECT_EQ(code[2].op, Opcode::Fence);
}

TEST(Assembler, DisassembleRoundTrip)
{
    // Assemble, disassemble, re-assemble: same instruction stream.
    const Program p1 = assemble(R"(
        .thread
            movi r1, -5
            addi r2, r1, 3
            store [7], r2
            load r3, [7]
            bz r3, 5
            nop
            halt
    )");
    std::string text = ".thread\n";
    for (const auto &i : p1.thread(0).code)
        text += disassemble(i) + "\n";
    const Program p2 = assemble(text);
    const auto &a = p1.thread(0).code;
    const auto &b = p2.thread(0).code;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].op, b[i].op) << "instr " << i;
        EXPECT_EQ(a[i].imm, b[i].imm) << "instr " << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << "instr " << i;
        EXPECT_EQ(a[i].target, b[i].target) << "instr " << i;
    }
}

using AssemblerDeath = ::testing::Test;

TEST(AssemblerDeath, UnknownMnemonicFatals)
{
    EXPECT_EXIT(assemble(".thread\n frobnicate r1\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(AssemblerDeath, UnknownVariableFatals)
{
    EXPECT_EXIT(assemble(".thread\n load r1, [nosuch]\n"),
                ::testing::ExitedWithCode(1), "unknown variable");
}

TEST(AssemblerDeath, InstructionBeforeThreadFatals)
{
    EXPECT_EXIT(assemble("nop\n"), ::testing::ExitedWithCode(1),
                "before .thread");
}

} // namespace
} // namespace wmr
