/**
 * @file
 * Static (compile-time) data-race analysis — the complementary half
 * of the paper's tooling story.
 *
 * Section 1: "Static techniques perform a compile-time analysis of
 * the program text to detect a superset of all possible data races
 * that could potentially occur in all possible sequentially
 * consistent executions ... static analysis must be conservative and
 * slow ... the general consensus ... is that tools should support
 * both static and dynamic techniques in a complementary fashion
 * [EmP88].  Static techniques can be applied to programs for weak
 * systems unchanged, because they do not rely on executing the
 * program."
 *
 * This analyzer implements the classic lockset discipline statically:
 * two static accesses from different threads POTENTIALLY race when
 * they may touch a common data word, at least one writes, and the
 * must-hold locksets at the two program points share no lock.  It is
 * deliberately conservative:
 *
 *  - indexed addressing is treated as "may touch any data word";
 *  - release/acquire FLAG synchronization (SyncStore/SyncLoad
 *    ordering) is not modeled, so flag-synchronized programs are
 *    over-reported — exactly the imprecision that motivates pairing
 *    static analysis with the dynamic detector.
 *
 * Soundness direction (checked by property tests): every dynamic
 * data race's static pair appears in the static report.
 */

#ifndef WMR_STATICDET_STATIC_ANALYZER_HH
#define WMR_STATICDET_STATIC_ANALYZER_HH

#include <string>
#include <vector>

#include "staticdet/lockset_dataflow.hh"

namespace wmr {

/** One static shared-memory access site. */
struct StaticAccess
{
    ProcId proc = 0;
    std::uint32_t pc = 0;
    bool isWrite = false;
    bool isSync = false;

    /** Statically known address (valid when !anyAddr). */
    Addr addr = 0;

    /** Indexed access: may touch any data word. */
    bool anyAddr = false;

    /** Must-held locks at this point. */
    LockSet held;
};

/** A potential race between two static access sites. */
struct PotentialRace
{
    StaticAccess a;
    StaticAccess b;

    /** Both addresses statically known and equal (high confidence)
     *  vs. overlap only via an indexed access (low confidence). */
    bool exactAddress = false;
};

/** Result of the static analysis. */
struct StaticAnalysis
{
    /** All shared data access sites, per thread. */
    std::vector<StaticAccess> accesses;

    /** Potential data races (pairs of sites). */
    std::vector<PotentialRace> races;

    /** @return whether any potential race was found. */
    bool clean() const { return races.empty(); }
};

/** Options of the static analysis. */
struct StaticOptions
{
    /**
     * Addresses below this bound are considered synchronization
     * infrastructure and excluded from "may touch any data word"
     * aliasing of indexed accesses (0 = no exclusion).  Typically
     * the lock words occupy the low addresses.
     */
    Addr firstDataAddr = 0;
};

/** Analyze @p prog statically. */
StaticAnalysis analyzeStatically(const Program &prog,
                                 const StaticOptions &opts = {});

/** Render the analysis as a human-readable report. */
std::string formatStaticReport(const StaticAnalysis &analysis,
                               const Program *prog = nullptr);

} // namespace wmr

#endif // WMR_STATICDET_STATIC_ANALYZER_HH
