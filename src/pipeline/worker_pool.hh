/**
 * @file
 * Compatibility forwarder: WorkerPool moved to common/worker_pool.hh
 * when the single-trace analysis engine (src/hb, src/detect) started
 * sharing it — the hb layer cannot depend on pipeline headers.
 */

#ifndef WMR_PIPELINE_WORKER_POOL_HH
#define WMR_PIPELINE_WORKER_POOL_HH

#include "common/worker_pool.hh"

#endif // WMR_PIPELINE_WORKER_POOL_HH
