/**
 * @file
 * The full matrix: every memory model × both hardware realizations,
 * swept over the pattern library.  One parameterized suite asserting
 * the paper's portable guarantees everywhere:
 *
 *  - data-race-free patterns behave identically to SC (values AND
 *    zero stale reads) — Condition 3.4(1);
 *  - racy patterns never violate Condition 3.4(2);
 *  - detection verdicts are model-independent for the same program
 *    family (races exist on SC iff they exist on weak models).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "detect/analysis.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"

namespace wmr {
namespace {

using MatrixParam = std::tuple<ModelKind, Realization>;

class ModelMatrix : public ::testing::TestWithParam<MatrixParam>
{
  protected:
    ModelKind model() const { return std::get<0>(GetParam()); }
    Realization realization() const { return std::get<1>(GetParam()); }

    ExecutionResult
    run(const Program &p, std::uint64_t seed,
        double laziness = 0.9) const
    {
        ExecOptions opts;
        opts.model = model();
        opts.realization = realization();
        opts.seed = seed;
        opts.drainLaziness = laziness;
        return runProgram(p, opts);
    }
};

TEST_P(ModelMatrix, TicketLockCorrect)
{
    const Program p = ticketLock(3, 2);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto res = run(p, seed);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.memAt(3), 6);
        EXPECT_EQ(res.staleReads, 0u);
    }
}

TEST_P(ModelMatrix, BarrierStripesRaceFree)
{
    const Program p = barrierStripes(3, 2);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto res = run(p, seed);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.staleReads, 0u);
        EXPECT_FALSE(analyzeExecution(res).anyDataRace());
    }
}

TEST_P(ModelMatrix, FixedDoubleCheckedInitDelivers)
{
    const Program p = doubleCheckedInit(2, /*fixed=*/true);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto res = run(p, seed);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.memAt(3), 42);
        EXPECT_EQ(res.memAt(4), 42);
        EXPECT_EQ(res.staleReads, 0u);
    }
}

TEST_P(ModelMatrix, ProducerConsumerDelivers)
{
    const Program p = producerConsumer(4, 2);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto res = run(p, seed);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.finalRegs[1][1], 4); // all items consumed
        EXPECT_EQ(res.staleReads, 0u);
    }
}

TEST_P(ModelMatrix, Condition34OnRacyPrograms)
{
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const Program p = randomRacyProgram(seed);
        const auto det = analyzeExecution(run(p, seed + 1, 0.95));
        const auto bad = checkCondition34(det.races(), det.scp(),
                                          det.augmented());
        EXPECT_TRUE(bad.empty()) << "seed " << seed;
    }
}

TEST_P(ModelMatrix, RaceVerdictMatchesScVerdict)
{
    // A program family's race verdict on this (model, realization)
    // agrees with its verdict under SC for race-free programs; racy
    // programs may hide races in a particular schedule, so only the
    // race-free direction is exact.
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const Program p = randomRaceFreeProgram(seed);
        EXPECT_FALSE(analyzeExecution(run(p, seed)).anyDataRace())
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsBothRealizations, ModelMatrix,
    ::testing::Combine(::testing::ValuesIn(kAllModels),
                       ::testing::ValuesIn(kAllRealizations)),
    [](const auto &info) {
        const auto model = std::get<0>(info.param);
        const auto realization = std::get<1>(info.param);
        return std::string(modelName(model)) + "_" +
               (realization == Realization::StoreBuffer
                    ? "Buffer"
                    : "Invalidate");
    });

} // namespace
} // namespace wmr
