/**
 * @file
 * Runtime-tracer cost study (the Section 5 overhead question asked
 * of the in-process tracer of src/rt):
 *
 *  (1) the per-thread SPSC ring moves tens of millions of records
 *      per second, so the annotation hot path is not queue-bound;
 *  (2) an annotation with NO active tracer is near-free (one
 *      thread-local load and a branch) — annotated binaries can ship
 *      with tracing compiled in;
 *  (3) record-mode annotations cost tens of nanoseconds, and inline
 *      detection trades the trace file for per-op detector work —
 *      the same storage/run-time trade-off as Section 5;
 *  (4) the crash-resilient segmented spill (docs/TRACE_FORMAT.md)
 *      is free on the annotation hot path — framing, CRC32 and the
 *      incremental writes all ride on the drain thread.
 */

#include "bench_util.hh"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include <unistd.h>

#include "rt/annotate.hh"
#include "rt/ring_buffer.hh"
#include "rt/tracer.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;
using namespace wmr::rt;

using Clock = std::chrono::steady_clock;

double
nsPerOp(Clock::time_point t0, Clock::time_point t1, std::uint64_t n)
{
    return std::chrono::duration<double, std::nano>(t1 - t0)
               .count() /
           static_cast<double>(n);
}

/** One record-shaped payload for the raw ring measurements. */
struct Payload
{
    std::uint8_t kind = 0;
    std::uint32_t size = 0;
    const void *addr = nullptr;
    std::uint64_t a = 0, b = 0;
};

double
ringSingleThreadNs(std::uint64_t n)
{
    SpscRing<Payload> ring(1 << 12);
    Payload p, out;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        p.a = i;
        ring.tryPush(p);
        ring.tryPop(out);
    }
    const auto t1 = Clock::now();
    benchmark::DoNotOptimize(out.a);
    return nsPerOp(t0, t1, n);
}

double
ringCrossThreadNs(std::uint64_t n)
{
    SpscRing<Payload> ring(1 << 12);
    std::uint64_t sum = 0;
    const auto t0 = Clock::now();
    std::thread consumer([&] {
        Payload out;
        for (std::uint64_t got = 0; got < n;) {
            if (ring.tryPop(out)) {
                sum += out.a;
                ++got;
            }
        }
    });
    Payload p;
    for (std::uint64_t i = 0; i < n; ++i) {
        p.a = 1;
        while (!ring.tryPush(p)) {
        }
    }
    consumer.join();
    const auto t1 = Clock::now();
    wmr_assert(sum == n);
    return nsPerOp(t0, t1, n);
}

/** ns per wmr_rt_write() with no tracer active (the shipping case). */
double
inactiveAnnotationNs(std::uint64_t n)
{
    std::uint64_t x = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i)
        wmr_rt_write(&x, sizeof(x));
    const auto t1 = Clock::now();
    return nsPerOp(t0, t1, n);
}

/** ns per Tracer::onData() under @p cfg (drained in background). */
double
activeAnnotationNs(TracerConfig cfg, std::uint64_t n)
{
    Tracer t(cfg);
    t.threadBegin();
    // Touch a small working set so inline detection does real work.
    std::uint64_t words[16] = {};
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i)
        t.onData(&words[i % 16], 8, (i & 3) == 0);
    const auto t1 = Clock::now();
    t.threadEnd();
    t.stop();
    return nsPerOp(t0, t1, n);
}

std::string
benchTracePath(const char *tag)
{
    return "/tmp/wmr_bench_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".trace";
}

void
reproduce()
{
    // Smoke mode (WMR_BENCH_SMOKE=1) keeps every section but shrinks
    // the op counts so CTest can run the full reproduction quickly.
    const std::uint64_t kRingOps = smokeMode() ? 1u << 15 : 1u << 22;
    const std::uint64_t kOps = smokeMode() ? 1u << 14 : 1u << 21;

    section("(1) SPSC ring throughput (per-thread record queue)");
    const double st = ringSingleThreadNs(kRingOps);
    const double xt = ringCrossThreadNs(kRingOps);
    std::printf("  %-28s %8.1f ns/rec  (%6.1f Mrec/s)\n",
                "push+pop, one thread", st, 1e3 / st);
    std::printf("  %-28s %8.1f ns/rec  (%6.1f Mrec/s)\n",
                "producer -> consumer", xt, 1e3 / xt);

    section("(2)+(3) annotation overhead per data access");
    const double off = inactiveAnnotationNs(kOps);

    TracerConfig rec;
    rec.mode = RtMode::Record;
    rec.overflow = RtOverflowPolicy::Block;
    const double record = activeAnnotationNs(rec, kOps);

    TracerConfig inl;
    inl.mode = RtMode::Inline;
    inl.detector = RtDetector::Epoch;
    inl.overflow = RtOverflowPolicy::Block;
    const double inlineNs = activeAnnotationNs(inl, kOps);

    std::printf("  %-28s %8.2f ns/op\n", "tracer inactive (no-op)",
                off);
    std::printf("  %-28s %8.2f ns/op  (x%.1f)\n",
                "record mode (EVENT file)", record, record / off);
    std::printf("  %-28s %8.2f ns/op  (x%.1f)\n",
                "inline mode (epoch)", inlineNs, inlineNs / off);
    note("record mode buys post-mortem analysis for the cost of the "
         "ring push;");
    note("inline mode trades the trace file for detector work per "
         "drained op.");

    section("(4) segmented-spill overhead on the annotation path");
    const std::string classicPath = benchTracePath("classic");
    const std::string spillPath = benchTracePath("spill");

    TracerConfig classic;
    classic.mode = RtMode::Record;
    classic.overflow = RtOverflowPolicy::Block;
    classic.tracePath = classicPath;
    const double classicNs = activeAnnotationNs(classic, kOps);

    TracerConfig spill = classic;
    spill.tracePath = spillPath;
    spill.spillSegmentBytes = 64 * 1024;
    const double spillNs = activeAnnotationNs(spill, kOps);

    std::printf("  %-28s %8.2f ns/op\n",
                "classic (write at stop)", classicNs);
    std::printf("  %-28s %8.2f ns/op  (x%.2f)\n",
                "segmented spill (64 KiB)", spillNs,
                spillNs / classicNs);
    note("sealing, CRC32 and incremental writes run on the drain "
         "thread, so");
    note("crash resilience costs the annotated program ~nothing.");
    std::remove(classicPath.c_str());
    std::remove(spillPath.c_str());
}

// --- google-benchmark timings ----------------------------------

void
BM_RingPushPop(benchmark::State &state)
{
    SpscRing<Payload> ring(1 << 12);
    Payload p, out;
    for (auto _ : state) {
        ring.tryPush(p);
        ring.tryPop(out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPushPop);

void
BM_AnnotationInactive(benchmark::State &state)
{
    std::uint64_t x = 0;
    for (auto _ : state)
        wmr_rt_write(&x, sizeof(x));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnnotationInactive);

void
BM_AnnotationRecord(benchmark::State &state)
{
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    cfg.overflow = RtOverflowPolicy::Block;
    Tracer t(cfg);
    t.threadBegin();
    std::uint64_t words[16] = {};
    std::uint64_t i = 0;
    for (auto _ : state) {
        t.onData(&words[i % 16], 8, (i & 3) == 0);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
    t.threadEnd();
    t.stop();
}
BENCHMARK(BM_AnnotationRecord);

void
BM_AnnotationRecordSpill(benchmark::State &state)
{
    const std::string path = benchTracePath("bm_spill");
    TracerConfig cfg;
    cfg.mode = RtMode::Record;
    cfg.overflow = RtOverflowPolicy::Block;
    cfg.tracePath = path;
    cfg.spillSegmentBytes = 64 * 1024;
    Tracer t(cfg);
    t.threadBegin();
    std::uint64_t words[16] = {};
    std::uint64_t i = 0;
    for (auto _ : state) {
        t.onData(&words[i % 16], 8, (i & 3) == 0);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
    t.threadEnd();
    t.stop();
    std::remove(path.c_str());
}
BENCHMARK(BM_AnnotationRecordSpill);

void
BM_AnnotationInline(benchmark::State &state)
{
    TracerConfig cfg;
    cfg.mode = RtMode::Inline;
    cfg.detector = state.range(0) == 0 ? RtDetector::VectorClock
                                       : RtDetector::Epoch;
    cfg.overflow = RtOverflowPolicy::Block;
    Tracer t(cfg);
    t.threadBegin();
    std::uint64_t words[16] = {};
    std::uint64_t i = 0;
    for (auto _ : state) {
        t.onData(&words[i % 16], 8, (i & 3) == 0);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
    t.threadEnd();
    t.stop();
}
BENCHMARK(BM_AnnotationInline)->Arg(0)->Arg(1);

} // namespace

WMR_BENCH_MAIN(reproduce)
