/**
 * @file
 * Common types of the on-the-fly detectors.
 *
 * Section 5 contrasts the paper's post-mortem method with on-the-fly
 * detection [ChM91, DiS90, HKM90]: no trace files, but typically
 * higher run-time overhead and, when history buffers are bounded,
 * lost accuracy — some first races go undetected.  These detectors
 * subscribe to the simulator's live operation stream (OpSink) and
 * reproduce exactly those trade-offs for the benchmarks.
 */

#ifndef WMR_ONTHEFLY_ONTHEFLY_HH
#define WMR_ONTHEFLY_ONTHEFLY_HH

#include <set>
#include <vector>

#include "common/types.hh"
#include "sim/executor.hh"

namespace wmr {

/** One race reported on the fly. */
struct OtfRace
{
    ProcId proc1 = 0;
    std::uint32_t pc1 = 0;
    ProcId proc2 = 0;
    std::uint32_t pc2 = 0;
    Addr addr = 0;
    OpId atOp = kNoOp;  ///< operation at which it was reported

    /** Own-component clock values of the two endpoints at their
     *  access times (endpoint 1 is the recorded past access,
     *  endpoint 2 the access that triggered the report).  Used by
     *  FirstRaceFilter's online affects approximation. */
    std::uint64_t ts1 = 0;
    std::uint64_t ts2 = 0;

    auto operator<=>(const OtfRace &) const = default;
};

/** Run-time overhead counters of one detection run. */
struct OtfStats
{
    std::uint64_t opsProcessed = 0;
    std::uint64_t clockJoins = 0;       ///< full vector joins
    std::uint64_t epochChecks = 0;      ///< O(1) epoch comparisons
    std::uint64_t clockAllocations = 0; ///< vectors materialized
    std::uint64_t racesReported = 0;

    /** Rough metadata footprint in bytes. */
    std::uint64_t metadataBytes = 0;
};

/** Base class: an OpSink that accumulates races and stats. */
class OnTheFlyDetector : public OpSink
{
  public:
    /** @return all races reported, in report order. */
    const std::vector<OtfRace> &races() const { return races_; }

    /** @return overhead counters. */
    const OtfStats &stats() const { return stats_; }

    /** @return distinct (pc,pc,addr) races, canonicalized. */
    std::set<OtfRace>
    distinctRaces() const
    {
        std::set<OtfRace> out;
        for (auto r : races_) {
            r.atOp = kNoOp;
            r.ts1 = r.ts2 = 0;
            if (r.proc2 < r.proc1 ||
                (r.proc2 == r.proc1 && r.pc2 < r.pc1)) {
                std::swap(r.proc1, r.proc2);
                std::swap(r.pc1, r.pc2);
            }
            out.insert(r);
        }
        return out;
    }

  protected:
    void
    report(const OtfRace &race)
    {
        races_.push_back(race);
        ++stats_.racesReported;
    }

    std::vector<OtfRace> races_;
    OtfStats stats_;
};

} // namespace wmr

#endif // WMR_ONTHEFLY_ONTHEFLY_HH
