# Empty dependencies file for wmr_mc.
# This may be replaced when dependencies are built.
