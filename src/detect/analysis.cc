#include "detect/analysis.hh"

#include <sstream>

#include "common/worker_pool.hh"
#include "obs/obs.hh"

namespace wmr {

DetectionResult::DetectionResult(ExecutionTrace trace,
                                 const AnalysisOptions &opts,
                                 const std::vector<MemOp> *ops)
    : trace_(std::move(trace))
{
    const unsigned threads = resolveThreads(opts.threads);
    stats_.threads = threads;
    stats_.events = trace_.events().size();

    // Every stage is timed by the SAME obs::StagedSpan shim: the
    // seconds land in AnalysisStats (as before), and when span
    // collection is on (WMR_OBS / --trace-out) the six stages show
    // up on the process-wide timeline.  The stage names here are the
    // contract of the Chrome-trace acceptance test.
    obs::StagedSpan total("analysis.run", stats_.totalSeconds);

    {
        obs::StagedSpan s("analysis.graph_build",
                          stats_.graphBuildSeconds);
        hb_ = std::make_unique<HbGraph>(trace_);
    }
    {
        obs::StagedSpan s("analysis.reachability",
                          stats_.reachabilitySeconds);
        reach_ = std::make_unique<ReachabilityIndex>(*hb_, trace_,
                                                     threads);
    }
    stats_.hbReach = reach_->buildStats();
    stats_.hbComponents = reach_->scc().numComponents;

    {
        obs::StagedSpan s("analysis.race_find",
                          stats_.raceFindSeconds);
        races_ = findRaces(trace_, *reach_, opts.finder, threads,
                           &stats_.finder);
    }
    {
        obs::StagedSpan s("analysis.augment", stats_.augmentSeconds);
        aug_ = std::make_unique<AugmentedGraph>(*hb_, races_, trace_,
                                                threads);
    }
    stats_.augReach = aug_->reach().buildStats();
    stats_.augComponents = aug_->reach().scc().numComponents;

    {
        obs::StagedSpan s("analysis.partition",
                          stats_.partitionSeconds);
        parts_ = partitionRaces(races_, *aug_);
    }
    {
        obs::StagedSpan s("analysis.scp", stats_.scpSeconds);
        scp_ = analyzeScp(trace_, races_, ops);
    }

    // Publish the run into the process-wide registry — the one sink
    // `wmrace check`, `batch` workers and annotated programs share.
    static obs::Counter cRuns = obs::counter("analysis.runs");
    static obs::Counter cEvents = obs::counter("analysis.events");
    static obs::Counter cRaces = obs::counter("analysis.races");
    static obs::Counter cCandidates =
        obs::counter("analysis.candidate_pairs");
    static obs::Counter cQueries =
        obs::counter("analysis.reach_queries");
    cRuns.inc();
    cEvents.add(stats_.events);
    cRaces.add(races_.size());
    cCandidates.add(stats_.finder.candidatePairs);
    cQueries.add(stats_.finder.reachQueries);
}

bool
DetectionResult::anyDataRace() const
{
    return numDataRaces() > 0;
}

std::size_t
DetectionResult::numDataRaces() const
{
    std::size_t n = 0;
    for (const auto &r : races_) {
        if (r.isDataRace)
            ++n;
    }
    return n;
}

DetectionResult
analyzeTrace(ExecutionTrace trace, const AnalysisOptions &opts)
{
    return DetectionResult(std::move(trace), opts, nullptr);
}

DetectionResult
analyzeExecution(const ExecutionResult &res, const AnalysisOptions &opts)
{
    ExecutionTrace trace = buildTrace(res, opts.traceOpts);
    return DetectionResult(std::move(trace), opts, &res.ops);
}

std::string
formatAnalysisStats(const AnalysisStats &s)
{
    std::ostringstream os;
    os << "analysis stats (" << s.threads
       << (s.threads == 1 ? " thread)\n" : " threads)\n");
    os << "  events             " << s.events << "\n";
    os << "  hb1 components     " << s.hbComponents << "\n";
    os << "  G' components      " << s.augComponents << "\n";
    os << std::fixed;
    os.precision(6);
    const auto stage = [&os](const char *name, double seconds) {
        os << "  " << name << seconds << " s\n";
    };
    stage("graph build        ", s.graphBuildSeconds);
    stage("reachability       ", s.reachabilitySeconds);
    os << "    scc              " << s.hbReach.sccSeconds << " s, clocks "
       << s.hbReach.clockSeconds << " s ("
       << (s.hbReach.parallelClocks ? "parallel, " : "serial, ")
       << s.hbReach.levels << " levels)\n";
    stage("race finding       ", s.raceFindSeconds);
    os << "    shards " << s.finder.shards << ", addrs "
       << s.finder.indexedAddrs << ", candidates "
       << s.finder.candidatePairs << ", memo hits "
       << s.finder.memoHits << ", oracle queries "
       << s.finder.reachQueries << ", ordered "
       << s.finder.orderedPairs << "\n";
    stage("augment (G')       ", s.augmentSeconds);
    os << "    scc              " << s.augReach.sccSeconds << " s, clocks "
       << s.augReach.clockSeconds << " s ("
       << (s.augReach.parallelClocks ? "parallel, " : "serial, ")
       << s.augReach.levels << " levels)\n";
    stage("partitioning       ", s.partitionSeconds);
    stage("scp classification ", s.scpSeconds);
    stage("total              ", s.totalSeconds);
    return os.str();
}

} // namespace wmr
