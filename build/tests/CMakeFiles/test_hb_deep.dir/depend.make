# Empty dependencies file for test_hb_deep.
# This may be replaced when dependencies are built.
