/**
 * @file
 * A CRC32-extended 64-bit content digest for content addressing
 * (the serve result cache keys analysis results by trace bytes).
 *
 * Construction: two INDEPENDENT CRC-32 streams over the same data.
 * The low word is the plain CRC-32 (src/common/crc32.hh); the high
 * word is a CRC-32 over the bit-reversed bytes, finished over the
 * low word and the total length.  Bit reversal is a fixed GF(2)
 * permutation of the message bits, so the two words are DIFFERENT
 * linear codes: a message pair that collides in one stream is not in
 * the kernel of the other, which is what makes this an extension
 * rather than two correlated copies (two CRCs that differ only in
 * their initial value collide together on same-length inputs).
 *
 * This is NOT cryptographic — an adversary can forge collisions.
 * It is collision-resistant enough for cache addressing of trusted
 * uploads, and cache keys additionally carry the exact byte length
 * (see serve/result_cache.hh), so a forged hit also needs a length
 * match against both codes.
 *
 * The incremental API mirrors crc32.hh so hashing can stream over
 * socket reads without buffering twice.
 */

#ifndef WMR_COMMON_HASH64_HH
#define WMR_COMMON_HASH64_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace wmr {

/** Incremental CRC32-extended 64-bit digest. */
class ContentHash
{
  public:
    /** Fold @p n bytes at @p data into the running digest. */
    void update(const void *data, std::size_t n);

    /** @return the finished 64-bit digest (idempotent). */
    std::uint64_t finish() const;

    /** @return total bytes folded in so far. */
    std::uint64_t length() const { return len_; }

  private:
    std::uint32_t lo_ = 0xffffffffu; ///< running plain CRC-32
    std::uint32_t hi_ = 0xffffffffu; ///< running bit-reversed CRC-32
    std::uint64_t len_ = 0;
};

/** One-shot convenience: digest of @p n bytes at @p data. */
std::uint64_t contentHash64(const void *data, std::size_t n);

/** Render @p digest as 16 lowercase hex digits (stable file names
 *  for the disk-persisted cache and the serve spool). */
std::string hash64Hex(std::uint64_t digest);

} // namespace wmr

#endif // WMR_COMMON_HASH64_HH
