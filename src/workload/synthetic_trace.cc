#include "workload/synthetic_trace.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "trace/segmented_io.hh"

namespace wmr {

ExecutionTrace
makeSyntheticTrace(const SyntheticTraceOptions &opts)
{
    wmr_assert(opts.procs > 0);
    wmr_assert(opts.memWords > 0);
    const Addr syncWords =
        std::min<Addr>(std::max<Addr>(opts.syncWords, 1),
                       opts.memWords);
    const Addr dataBase = syncWords < opts.memWords ? syncWords : 0;
    const Addr dataSpan = opts.memWords - dataBase;
    const Addr hotWords =
        std::min<Addr>(std::max<Addr>(opts.hotWords, 1), dataSpan);

    Rng rng(opts.seed);
    ExecutionTrace trace;
    trace.setShape(opts.procs, opts.memWords);

    // Latest release sync event seen per sync word, across all
    // processors — the pairing target of later acquires.  Events are
    // added in chronological (round-robin step) order, so a paired
    // release always has a smaller event id than its acquire and the
    // resulting hb1 graph is acyclic, like a real execution's.
    std::vector<EventId> lastRelease(syncWords, kNoEvent);

    const auto dataAddr = [&]() -> Addr {
        if (rng.chance(opts.hotFraction))
            return dataBase + static_cast<Addr>(rng.below(hotWords));
        return dataBase + static_cast<Addr>(rng.below(dataSpan));
    };

    OpId nextOp = 0;
    std::uint64_t totalOps = 0;

    // Round-robin interleave: step-major, processor-minor.
    for (std::uint32_t step = 0; step < opts.eventsPerProc; ++step) {
        for (ProcId p = 0; p < opts.procs; ++p) {
            Event ev;
            ev.proc = p;
            if (rng.chance(opts.syncFraction)) {
                ev.kind = EventKind::Sync;
                const Addr w =
                    static_cast<Addr>(rng.below(syncWords));
                MemOp &op = ev.syncOp;
                op.id = nextOp;
                op.proc = p;
                op.sync = true;
                op.addr = w;
                if (rng.chance(opts.acquireFraction)) {
                    op.kind = OpKind::Read;
                    op.acquire = true;
                    if (lastRelease[w] != kNoEvent &&
                        rng.chance(opts.pairFraction))
                        ev.pairedRelease = lastRelease[w];
                } else {
                    op.kind = OpKind::Write;
                    op.release = true;
                }
                ev.firstOp = ev.lastOp = nextOp;
                ev.opCount = 1;
                ++nextOp;
                ++totalOps;
                const EventId id = trace.addEvent(std::move(ev));
                if (trace.event(id).syncOp.release)
                    lastRelease[w] = id;
            } else {
                ev.kind = EventKind::Computation;
                ev.readSet.resize(opts.memWords);
                ev.writeSet.resize(opts.memWords);
                const auto nr = 1 + rng.below(opts.maxReads);
                const auto nw = rng.below(opts.maxWrites + 1);
                for (std::uint64_t i = 0; i < nr; ++i)
                    ev.readSet.set(dataAddr());
                for (std::uint64_t i = 0; i < nw; ++i)
                    ev.writeSet.set(dataAddr());
                const auto ops = nr + nw;
                ev.firstOp = nextOp;
                ev.lastOp = static_cast<OpId>(nextOp + ops - 1);
                ev.opCount = static_cast<std::uint32_t>(ops);
                nextOp = static_cast<OpId>(nextOp + ops);
                totalOps += ops;
                trace.addEvent(std::move(ev));
            }
        }
    }

    trace.setTotalOps(totalOps);
    return trace;
}

std::size_t
writeSyntheticSegmentedTraceFile(const SyntheticTraceOptions &opts,
                                 const std::string &path,
                                 std::size_t eventsPerSegment)
{
    wmr_assert(opts.procs > 0);
    wmr_assert(opts.memWords > 0);
    if (eventsPerSegment == 0)
        eventsPerSegment = 64;
    const Addr syncWords =
        std::min<Addr>(std::max<Addr>(opts.syncWords, 1),
                       opts.memWords);
    const Addr dataBase = syncWords < opts.memWords ? syncWords : 0;
    const Addr dataSpan = opts.memWords - dataBase;
    const Addr hotWords =
        std::min<Addr>(std::max<Addr>(opts.hotWords, 1), dataSpan);

    Rng rng(opts.seed);

    SegmentSpillWriter writer;
    if (!writer.open(path))
        return 0;

    // One pairing token per sync word: a release rebinds its word's
    // token, an acquire references it, and the writer's latest-wins
    // resolution yields exactly makeSyntheticTrace's lastRelease[w]
    // pairing.  Producer state never grows with the trace.
    std::vector<bool> haveRelease(syncWords, false);

    const auto dataAddr = [&]() -> Addr {
        if (rng.chance(opts.hotFraction))
            return dataBase + static_cast<Addr>(rng.below(hotWords));
        return dataBase + static_cast<Addr>(rng.below(dataSpan));
    };

    OpId nextOp = 0;
    std::uint64_t totalOps = 0;
    std::uint64_t opsAtSegmentStart = 0;

    // Identical RNG draw order to makeSyntheticTrace: equal options
    // give a byte-identical file.
    for (std::uint32_t step = 0; step < opts.eventsPerProc; ++step) {
        for (ProcId p = 0; p < opts.procs; ++p) {
            SegEvent ev;
            ev.proc = p;
            if (rng.chance(opts.syncFraction)) {
                ev.kind = EventKind::Sync;
                const Addr w =
                    static_cast<Addr>(rng.below(syncWords));
                MemOp &op = ev.syncOp;
                op.id = nextOp;
                op.proc = p;
                op.sync = true;
                op.addr = w;
                if (rng.chance(opts.acquireFraction)) {
                    op.kind = OpKind::Read;
                    op.acquire = true;
                    if (haveRelease[w] &&
                        rng.chance(opts.pairFraction))
                        ev.pairedToken = w + 1ull;
                } else {
                    op.kind = OpKind::Write;
                    op.release = true;
                    ev.releaseToken = w + 1ull;
                    haveRelease[w] = true;
                }
                ev.firstOp = ev.lastOp = nextOp;
                ev.opCount = 1;
                ++nextOp;
                ++totalOps;
            } else {
                ev.kind = EventKind::Computation;
                const auto nr = 1 + rng.below(opts.maxReads);
                const auto nw = rng.below(opts.maxWrites + 1);
                ev.readWords.reserve(nr);
                ev.writeWords.reserve(nw);
                for (std::uint64_t i = 0; i < nr; ++i)
                    ev.readWords.push_back(dataAddr());
                for (std::uint64_t i = 0; i < nw; ++i)
                    ev.writeWords.push_back(dataAddr());
                const auto ops = nr + nw;
                ev.firstOp = nextOp;
                ev.lastOp = static_cast<OpId>(nextOp + ops - 1);
                ev.opCount = static_cast<std::uint32_t>(ops);
                nextOp = static_cast<OpId>(nextOp + ops);
                totalOps += ops;
            }
            writer.addEvent(ev);
            if (writer.pendingEvents() >= eventsPerSegment) {
                writer.setCounters(opsAtSegmentStart, 0);
                if (!writer.sealSegment())
                    return 0;
                opsAtSegmentStart = totalOps;
            }
        }
    }

    writer.setCounters(opsAtSegmentStart, 0);
    SegShape shape;
    shape.procs = opts.procs;
    shape.memWords = opts.memWords;
    shape.firstStaleRead = kNoOp;
    shape.totalOps = totalOps;
    shape.droppedRecords = 0;
    if (!writer.finish(shape))
        return 0;
    return writer.bytesWritten();
}

} // namespace wmr
