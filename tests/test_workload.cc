/**
 * @file
 * Unit tests of the workload library: pattern semantics and the
 * race-free-by-construction guarantee of the random generator.
 */

#include <gtest/gtest.h>

#include "detect/analysis.hh"
#include "mc/explorer.hh"
#include "sim/executor.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

TEST(Patterns, Figure1aShape)
{
    const Program p = figure1a();
    EXPECT_EQ(p.numProcs(), 2);
    EXPECT_EQ(p.addrOf("x"), 0u);
    EXPECT_EQ(p.addrOf("y"), 1u);
}

TEST(Patterns, Figure1bAlwaysDelivers)
{
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::DRF1;
        opts.seed = seed;
        const auto res = runProgram(figure1b(), opts);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.finalRegs[1][1], 1); // y
        EXPECT_EQ(res.finalRegs[1][2], 1); // x
    }
}

TEST(Patterns, QueueFixedVariantIsRaceFree)
{
    const Program p = figure2Queue({.regionSize = 4,
                                    .staleOffset = 1,
                                    .withTestAndSet = true});
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        const auto res = runProgram(p, opts);
        ASSERT_TRUE(res.completed);
        const auto det = analyzeExecution(res);
        EXPECT_FALSE(det.anyDataRace()) << "seed " << seed;
        EXPECT_EQ(res.staleReads, 0u);
    }
}

TEST(Patterns, QueueBuggyVariantRacesOnSc)
{
    // Even on SC the buggy program has data races (that is the bug).
    const auto truth = exploreScExecutions(
        figure2Queue({.regionSize = 2, .staleOffset = 1}),
        {.maxExecutions = 200'000});
    EXPECT_TRUE(truth.anyDataRace);
}

TEST(Patterns, ProducerConsumerDelivers)
{
    const Program p = producerConsumer(6, 3);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::RCsc;
        opts.seed = seed;
        const auto res = runProgram(p, opts);
        ASSERT_TRUE(res.completed) << "seed " << seed;
        // consumer consumed all items
        EXPECT_EQ(res.finalRegs[1][1], 6);
        const auto det = analyzeExecution(res);
        EXPECT_FALSE(det.anyDataRace());
    }
}

TEST(Patterns, ProducerConsumerRacyVariantRaces)
{
    const Program p = producerConsumer(3, 2, /*racy=*/true);
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.seed = 1;
    const auto res = runProgram(p, opts);
    ASSERT_TRUE(res.completed);
    const auto det = analyzeExecution(res);
    EXPECT_TRUE(det.anyDataRace());
}

TEST(Patterns, BarrierStripesRaceFreeAndCorrect)
{
    const Program p = barrierStripes(3, 2);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        const auto res = runProgram(p, opts);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.staleReads, 0u);
        const auto det = analyzeExecution(res);
        EXPECT_FALSE(det.anyDataRace()) << "seed " << seed;
    }
}

TEST(Patterns, DekkerIsRacyByDesign)
{
    const auto det = analyzeExecution(
        runProgram(dekkerDataFlags(), {.model = ModelKind::SC}));
    EXPECT_TRUE(det.anyDataRace());
}

TEST(Patterns, DekkerFlagReadsGoStaleOnWeak)
{
    // On a weak model the data-flag handshake breaks: some execution
    // reads a flag stale (the entry protocol observes a value SC
    // would not supply).  Under SC this never happens.
    bool sawStale = false;
    for (std::uint64_t seed = 0; seed < 300 && !sawStale; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 1.0;
        const auto res = runProgram(dekkerDataFlags(), opts);
        sawStale = res.staleReads > 0;
    }
    EXPECT_TRUE(sawStale);

    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::SC;
        opts.seed = seed;
        EXPECT_EQ(runProgram(dekkerDataFlags(), opts).staleReads, 0u);
    }
}

TEST(RandomGen, RaceFreeByConstruction)
{
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const Program p = randomRaceFreeProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::SC;
        opts.seed = seed;
        const auto det = analyzeExecution(runProgram(p, opts));
        EXPECT_FALSE(det.anyDataRace()) << "seed " << seed;
    }
}

TEST(RandomGen, RacyProgramsUsuallyRace)
{
    int racy = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const Program p = randomRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::SC;
        opts.seed = seed;
        racy += analyzeExecution(runProgram(p, opts)).anyDataRace();
    }
    EXPECT_GT(racy, 15);
}

TEST(RandomGen, DeterministicForSeed)
{
    const Program a = randomRacyProgram(77);
    const Program b = randomRacyProgram(77);
    EXPECT_EQ(a.disassembleAll(), b.disassembleAll());
}

TEST(RandomGen, RespectsShapeParameters)
{
    RandomProgConfig cfg;
    cfg.procs = 5;
    cfg.seed = 3;
    const Program p = randomProgram(cfg);
    EXPECT_EQ(p.numProcs(), 5);
}

TEST(Scenarios, Figure1aViolationIsDeterministic)
{
    const auto a = stageFigure1aViolation();
    const auto b = stageFigure1aViolation();
    EXPECT_EQ(a.result.finalRegs[1][0], 1); // y: new value
    EXPECT_EQ(a.result.finalRegs[1][1], 0); // x: old value
    EXPECT_EQ(a.result.staleReads, b.result.staleReads);
    EXPECT_EQ(a.result.ops.size(), b.result.ops.size());
}

TEST(Scenarios, Figure1aViolationOnAllWeakModels)
{
    for (const auto kind : {ModelKind::WO, ModelKind::RCsc,
                            ModelKind::DRF0, ModelKind::DRF1}) {
        const auto s = stageFigure1aViolation(kind);
        EXPECT_EQ(s.result.finalRegs[1][0], 1) << modelName(kind);
        EXPECT_EQ(s.result.finalRegs[1][1], 0) << modelName(kind);
        EXPECT_GT(s.result.staleReads, 0u) << modelName(kind);
    }
}

TEST(Scenarios, Figure2bMatchesThePaper)
{
    const auto s = stageFigure2bExecution();
    ASSERT_TRUE(s.result.completed);
    // P2 dequeued the stale offset 37 (the paper's value).
    EXPECT_EQ(s.result.finalRegs[1][2], 37);
    EXPECT_NE(s.result.firstStaleRead, kNoOp);
    // P2 worked region [37,137), P3 worked [0,100): overlap exists,
    // and P2's region operations are divergent (post-SCP).
    bool divergentWork = false;
    for (const auto &op : s.result.ops) {
        divergentWork |= op.divergent && op.proc == 1 &&
                         op.kind == OpKind::Write;
    }
    EXPECT_TRUE(divergentWork);
}

} // namespace
} // namespace wmr
