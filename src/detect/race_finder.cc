#include "detect/race_finder.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "common/worker_pool.hh"

namespace wmr {

namespace {

/** Per-address accessor lists. */
struct AddrAccess
{
    std::vector<EventId> writers;
    std::vector<EventId> readers; ///< events reading but not writing
};

std::uint64_t
pairKey(EventId a, EventId b)
{
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

/** pairIndex value marking a pair the oracle proved hb1-ordered. */
constexpr std::uint32_t kOrderedPair = UINT32_MAX;

/**
 * One shard's enumeration state: a dedupe/memo table over the pairs
 * this shard has seen, the races it found, and its work counters.
 * Shards never share state, so workers need no locking.
 */
struct ShardState
{
    std::unordered_map<std::uint64_t, std::uint32_t> pairIndex;
    std::vector<DataRace> races;
    RaceFinderStats stats;
};

/**
 * Enumerate the candidate pairs of addresses [first, last) into
 * @p shard.  The same pair may be enumerated by several shards (when
 * it conflicts on addresses in different ranges); the merge unions
 * their address lists.
 */
void
runShard(const std::vector<AddrAccess> &byAddr, Addr first, Addr last,
         const ExecutionTrace &trace, const ReachabilityIndex &reach,
         const RaceFinderOptions &opts, ShardState &shard)
{
    const auto &events = trace.events();

    const auto consider = [&](EventId x, EventId y, Addr addr) {
        if (x == y)
            return;
        const Event &ex = events[x];
        const Event &ey = events[y];
        if (ex.proc == ey.proc)
            return; // po-ordered for sure
        const bool isData = ex.kind == EventKind::Computation ||
                            ey.kind == EventKind::Computation;
        if (!isData && !opts.includeSyncSyncRaces)
            return;
        ++shard.stats.candidatePairs;
        const EventId lo = std::min(x, y);
        const EventId hi = std::max(x, y);
        const std::uint64_t key = pairKey(lo, hi);
        const auto it = shard.pairIndex.find(key);
        if (it != shard.pairIndex.end()) {
            ++shard.stats.memoHits;
            if (it->second != kOrderedPair)
                shard.races[it->second].addrs.push_back(addr);
            return;
        }
        ++shard.stats.reachQueries;
        if (reach.ordered(lo, hi)) {
            // Memoize the verdict: an ordered pair conflicting on
            // many addresses must not re-run the oracle per address.
            shard.pairIndex.emplace(key, kOrderedPair);
            ++shard.stats.orderedPairs;
            return;
        }
        DataRace r;
        r.a = lo;
        r.b = hi;
        r.addrs.push_back(addr);
        r.isDataRace = isData;
        wmr_assert(shard.races.size() < kOrderedPair);
        shard.pairIndex.emplace(
            key, static_cast<std::uint32_t>(shard.races.size()));
        shard.races.push_back(std::move(r));
    };

    for (Addr a = first; a < last; ++a) {
        const auto &acc = byAddr[a];
        if (!acc.writers.empty())
            ++shard.stats.indexedAddrs;
        for (std::size_t i = 0; i < acc.writers.size(); ++i) {
            for (std::size_t j = i + 1; j < acc.writers.size(); ++j)
                consider(acc.writers[i], acc.writers[j], a);
            for (const EventId r : acc.readers)
                consider(acc.writers[i], r, a);
        }
    }
}

/**
 * Cut the address range into @p shards contiguous ranges of roughly
 * equal candidate-pair cost.  The split depends only on the accessor
 * lists, never on thread scheduling.
 */
std::vector<Addr>
shardBoundaries(const std::vector<AddrAccess> &byAddr,
                unsigned shards)
{
    std::vector<double> cost(byAddr.size());
    double total = 0;
    for (std::size_t a = 0; a < byAddr.size(); ++a) {
        const double w = static_cast<double>(byAddr[a].writers.size());
        const double r = static_cast<double>(byAddr[a].readers.size());
        cost[a] = w * (w - 1) / 2 + w * r;
        total += cost[a];
    }

    std::vector<Addr> bounds;
    bounds.push_back(0);
    double acc = 0;
    for (std::size_t a = 0;
         a < byAddr.size() && bounds.size() < shards; ++a) {
        acc += cost[a];
        if (acc >= total * static_cast<double>(bounds.size()) /
                       shards) {
            bounds.push_back(static_cast<Addr>(a + 1));
        }
    }
    // Pad when the cost mass ran out early: trailing empty ranges.
    while (bounds.size() < static_cast<std::size_t>(shards) + 1)
        bounds.push_back(static_cast<Addr>(byAddr.size()));
    return bounds;
}

} // namespace

std::vector<DataRace>
findRaces(const ExecutionTrace &trace, const ReachabilityIndex &reach,
          const RaceFinderOptions &opts, unsigned threads,
          RaceFinderStats *stats)
{
    const auto &events = trace.events();

    // Index events by accessed address.
    std::vector<AddrAccess> byAddr(trace.memWords());
    const auto cover = [&](Addr a) -> AddrAccess & {
        if (a >= byAddr.size())
            byAddr.resize(a + 1);
        return byAddr[a];
    };

    for (const auto &ev : events) {
        if (ev.kind == EventKind::Sync) {
            auto &acc = cover(ev.syncOp.addr);
            if (ev.syncOp.kind == OpKind::Write)
                acc.writers.push_back(ev.id);
            else
                acc.readers.push_back(ev.id);
        } else {
            ev.writeSet.forEach([&](std::size_t a) {
                cover(static_cast<Addr>(a)).writers.push_back(ev.id);
            });
            ev.readSet.forEach([&](std::size_t a) {
                // An event both reading and writing a word already
                // sits in writers; listing it in readers too would
                // only self-pair (skipped below), so keep it once.
                if (!ev.writeSet.test(a)) {
                    cover(static_cast<Addr>(a))
                        .readers.push_back(ev.id);
                }
            });
        }
    }

    // Shard the address range and enumerate candidates; shard 0 only
    // (== the serial path) needs no worker threads at all.
    const unsigned shards = std::max<unsigned>(
        1, std::min<std::size_t>(resolveThreads(threads),
                                 byAddr.size()));
    std::vector<ShardState> shardStates(shards);
    if (shards == 1) {
        runShard(byAddr, 0, static_cast<Addr>(byAddr.size()), trace,
                 reach, opts, shardStates[0]);
    } else {
        const auto bounds = shardBoundaries(byAddr, shards);
        WorkerPool pool(shards, [&](unsigned s) {
            runShard(byAddr, bounds[s], bounds[s + 1], trace, reach,
                     opts, shardStates[s]);
        });
        pool.join();
    }

    // Deterministic merge: a pair that conflicts on addresses in
    // several shards was enumerated (and oracle-checked) by each of
    // them; union the address lists under the first occurrence.
    std::vector<DataRace> races;
    std::unordered_map<std::uint64_t, std::size_t> merged;
    for (auto &shard : shardStates) {
        for (auto &r : shard.races) {
            const std::uint64_t key = pairKey(r.a, r.b);
            const auto it = merged.find(key);
            if (it == merged.end()) {
                merged.emplace(key, races.size());
                races.push_back(std::move(r));
            } else {
                auto &dst = races[it->second].addrs;
                dst.insert(dst.end(), r.addrs.begin(),
                           r.addrs.end());
            }
        }
        if (stats) {
            stats->indexedAddrs += shard.stats.indexedAddrs;
            stats->candidatePairs += shard.stats.candidatePairs;
            stats->memoHits += shard.stats.memoHits;
            stats->reachQueries += shard.stats.reachQueries;
            stats->orderedPairs += shard.stats.orderedPairs;
        }
    }
    if (stats)
        stats->shards = shards;

    // Canonical output, independent of sharding: sort by (a, b) and
    // sort/dedupe each address list.
    std::sort(races.begin(), races.end(),
              [](const DataRace &x, const DataRace &y) {
                  return x.a != y.a ? x.a < y.a : x.b < y.b;
              });
    for (auto &r : races) {
        std::sort(r.addrs.begin(), r.addrs.end());
        r.addrs.erase(std::unique(r.addrs.begin(), r.addrs.end()),
                      r.addrs.end());
    }
    return races;
}

} // namespace wmr
