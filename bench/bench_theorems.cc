/**
 * @file
 * Empirical verification sweep for the paper's formal results:
 *
 *  - Condition 3.4(1): race-free programs execute sequentially
 *    consistently on every weak model (verified against the SC
 *    model checker's ground truth);
 *  - Theorem 3.5 (as realized by the simulator): Condition 3.4 holds
 *    on every weak execution without any special hardware mode;
 *  - Theorem 4.1: first partitions with data races exist iff data
 *    races occurred;
 *  - Theorem 4.2: each first partition holds a race that occurs in a
 *    sequentially consistent execution — checked constructively with
 *    the SCP witness Eseq and exhaustively with the model checker.
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "mc/explorer.hh"
#include "mc/scp_witness.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

Program
tinyRacy(std::uint64_t seed)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = 2;
    cfg.blocksPerProc = 1;
    cfg.opsPerBlock = 3;
    cfg.dataWords = 3;
    cfg.numLocks = 1;
    cfg.unlockedProb = 1.0;
    return randomProgram(cfg);
}

void
reproduce()
{
    const ModelKind weak[] = {ModelKind::WO, ModelKind::RCsc,
                              ModelKind::DRF0, ModelKind::DRF1};

    section("Condition 3.4(1): DRF programs stay SC on weak models");
    std::printf("  %-28s %10s %12s %10s\n", "programs x seeds x models",
                "stale", "races", "verdict");
    {
        std::uint64_t stale = 0;
        std::size_t races = 0, runs = 0;
        for (std::uint64_t ps = 0; ps < 20; ++ps) {
            const Program p = randomRaceFreeProgram(ps);
            for (const auto kind : weak) {
                for (std::uint64_t es = 0; es < 5; ++es) {
                    ExecOptions opts;
                    opts.model = kind;
                    opts.seed = es;
                    opts.drainLaziness = 0.9;
                    const auto res = runProgram(p, opts);
                    stale += res.staleReads;
                    races += analyzeExecution(res).numDataRaces();
                    ++runs;
                }
            }
        }
        std::printf("  %-28s %10llu %12zu %10s\n",
                    ("20 x 5 x 4 = " + std::to_string(runs)).c_str(),
                    static_cast<unsigned long long>(stale), races,
                    (stale == 0 && races == 0) ? "HOLDS" : "FAILS");
    }

    section("Theorem 3.5 / Condition 3.4(2): weak executions covered");
    std::printf("  %-6s %14s %16s %10s\n", "model", "executions",
                "uncovered races", "verdict");
    for (const auto kind : weak) {
        std::size_t uncovered = 0, runs = 0;
        for (std::uint64_t seed = 0; seed < 40; ++seed) {
            const Program p = randomRacyProgram(seed);
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed + 7;
            opts.drainLaziness = 0.95;
            const auto det = analyzeExecution(runProgram(p, opts));
            uncovered += checkCondition34(det.races(), det.scp(),
                                          det.augmented())
                             .size();
            ++runs;
        }
        std::printf("  %-6s %14zu %16zu %10s\n",
                    std::string(modelName(kind)).c_str(), runs,
                    uncovered, uncovered == 0 ? "HOLDS" : "FAILS");
    }

    section("Theorem 4.1: first partitions <=> data races");
    {
        std::size_t agree = 0, total = 0;
        for (std::uint64_t seed = 0; seed < 60; ++seed) {
            const Program p = (seed % 3 == 0)
                                  ? randomRaceFreeProgram(seed)
                                  : randomRacyProgram(seed);
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = seed;
            const auto det = analyzeExecution(runProgram(p, opts));
            agree += det.anyDataRace() ==
                     !det.partitions().firstPartitions.empty();
            ++total;
        }
        std::printf("  %zu/%zu executions agree -> %s\n", agree,
                    total, agree == total ? "HOLDS" : "FAILS");
    }

    section("Theorem 4.2 (constructive): SCP races occur in Eseq");
    {
        std::size_t scpRaces = 0, confirmed = 0;
        for (std::uint64_t seed = 0; seed < 40; ++seed) {
            const Program p = tinyRacy(seed);
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = seed;
            opts.drainLaziness = 1.0;
            const auto res = runProgram(p, opts);
            const auto det = analyzeExecution(res);
            if (!det.anyDataRace())
                continue;
            const auto w = buildScpWitness(p, res);
            for (RaceId r = 0;
                 r < static_cast<RaceId>(det.races().size()); ++r) {
                if (!det.scp().raceInScp[r])
                    continue;
                ++scpRaces;
                for (const auto &pair :
                     staticPairsOfRace(det, r, res.ops)) {
                    if (w.eseqRaces.count(pair)) {
                        ++confirmed;
                        break;
                    }
                }
            }
        }
        std::printf("  SCP races: %zu, confirmed in Eseq: %zu -> "
                    "%s\n",
                    scpRaces, confirmed,
                    scpRaces == confirmed ? "HOLDS" : "FAILS");
    }

    section("Theorem 4.2 (exhaustive): first partitions SC-feasible");
    {
        std::size_t parts = 0, feasible = 0;
        for (std::uint64_t seed = 0; seed < 30; ++seed) {
            const Program p = tinyRacy(seed);
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = seed;
            opts.drainLaziness = 1.0;
            const auto res = runProgram(p, opts);
            const auto det = analyzeExecution(res);
            const auto truth =
                exploreScExecutions(p, {.maxExecutions = 20'000});
            for (const auto pi :
                 det.partitions().firstPartitions) {
                ++parts;
                bool ok = false;
                for (const auto r :
                     det.partitions().partitions[pi].races) {
                    for (const auto &pair :
                         staticPairsOfRace(det, r, res.ops)) {
                        ok |= truth.races.count(pair) > 0;
                    }
                }
                feasible += ok;
            }
        }
        std::printf("  first partitions: %zu, with SC-feasible race: "
                    "%zu -> %s\n",
                    parts, feasible,
                    parts == feasible ? "HOLDS" : "FAILS");
    }
}

void
BM_BuildScpWitness(benchmark::State &state)
{
    const Program p = tinyRacy(3);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 3;
    opts.drainLaziness = 1.0;
    const auto res = runProgram(p, opts);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buildScpWitness(p, res).eseqRaces.size());
    }
}
BENCHMARK(BM_BuildScpWitness);

void
BM_ExhaustiveScExploration(benchmark::State &state)
{
    const Program p = tinyRacy(static_cast<std::uint64_t>(
        state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            exploreScExecutions(p, {.maxExecutions = 20'000})
                .executions);
    }
}
BENCHMARK(BM_ExhaustiveScExploration)->Arg(1)->Arg(2)->Arg(3);

} // namespace

WMR_BENCH_MAIN(reproduce)
