#include "detect/analysis.hh"

namespace wmr {

DetectionResult::DetectionResult(ExecutionTrace trace,
                                 const AnalysisOptions &opts,
                                 const std::vector<MemOp> *ops)
    : trace_(std::move(trace))
{
    hb_ = std::make_unique<HbGraph>(trace_);
    reach_ = std::make_unique<ReachabilityIndex>(*hb_, trace_);
    races_ = findRaces(trace_, *reach_, opts.finder);
    aug_ = std::make_unique<AugmentedGraph>(*hb_, races_, trace_);
    parts_ = partitionRaces(races_, *aug_);
    scp_ = analyzeScp(trace_, races_, ops);
}

bool
DetectionResult::anyDataRace() const
{
    return numDataRaces() > 0;
}

std::size_t
DetectionResult::numDataRaces() const
{
    std::size_t n = 0;
    for (const auto &r : races_) {
        if (r.isDataRace)
            ++n;
    }
    return n;
}

DetectionResult
analyzeTrace(ExecutionTrace trace, const AnalysisOptions &opts)
{
    return DetectionResult(std::move(trace), opts, nullptr);
}

DetectionResult
analyzeExecution(const ExecutionResult &res, const AnalysisOptions &opts)
{
    ExecutionTrace trace = buildTrace(res, opts.traceOpts);
    return DetectionResult(std::move(trace), opts, &res.ops);
}

} // namespace wmr
