file(REMOVE_RECURSE
  "libwmr_hb.a"
)
