/**
 * @file
 * Dynamic robustness checking: does the observed execution have a
 * sequentially consistent equivalent at all?
 *
 * An execution is ROBUST (Shasha/Snir trace equivalence, as used by
 * the dynamic-robustness line of work in PAPERS.md) when some total
 * order of its memory operations simultaneously respects
 *
 *   po  — each processor's program order,
 *   rf  — every read placed after the write it observed, with no
 *         other write to the address in between,
 *   co  — the witnessed per-address coherence order (the order the
 *         simulator actually made writes globally visible),
 *
 * which is the case iff the relation po u rf u co u fr is acyclic,
 * where fr (from-read) points each read at the co-successor of its
 * observed write.  The simulator supplies the co witness
 * (ExecutionResult::visibilityOrder), so the check is a linear graph
 * build plus one topological sort — O(n + e) per execution, cheap
 * enough to run inline with detection.
 *
 * Relation to the paper's machinery: the issue-order staleness flag
 * (MemOp::stale) witnesses SC per-execution too, but only against
 * the ISSUE interleaving.  An execution with zero stale reads is
 * always robust (the issue order itself is the SC witness — tests
 * assert this containment); a stale read, however, does not imply
 * non-robustness (a different interleaving may explain it), and a
 * non-robust execution can even have zero stale reads (pure
 * write-write coherence inversions).  Robustness is therefore the
 * exact per-execution question, and Condition 3.4 the guarantee that
 * on DRF programs it never fails.
 *
 * Note the weaker rf-only question ("is there an SC execution with
 * the same reads-from, for ANY coherence order?") is NP-hard in
 * general; preserving the witnessed co is both what trace
 * equivalence asks and what keeps the check linear.
 */

#ifndef WMR_DETECT_ROBUSTNESS_HH
#define WMR_DETECT_ROBUSTNESS_HH

#include <string>
#include <vector>

#include "sim/executor.hh"
#include "sim/mem_op.hh"

namespace wmr {

/** One edge of the robustness-violation witness cycle. */
struct RobustnessEdge
{
    enum class Kind : std::uint8_t { Po, Rf, Co, Fr };

    OpId from = kNoOp;
    OpId to = kNoOp;
    Kind kind = Kind::Po;
};

/** @return short name ("po"/"rf"/"co"/"fr") of @p kind. */
std::string_view robustnessEdgeName(RobustnessEdge::Kind kind);

/** Verdict of the per-execution robustness check. */
struct RobustnessResult
{
    /** po u rf u co u fr acyclic: an SC-equivalent exists. */
    bool robust = true;

    /**
     * When not robust: the first operation (smallest issue id) whose
     * inclusion makes the execution prefix non-SC — every proper
     * prefix before it still has an SC-equivalent.  kNoOp if robust.
     */
    OpId violatingOp = kNoOp;

    /** When not robust: a witness cycle through violatingOp's
     *  prefix, as consecutive edges (last edge closes the cycle). */
    std::vector<RobustnessEdge> cycle;

    /** Operations / edges in the full constraint graph (stats). */
    std::size_t nodes = 0;
    std::size_t edges = 0;
};

/**
 * Check robustness of an operation stream against the witnessed
 * coherence order @p visibilityOrder (write ids in global-visibility
 * order; per-address restriction = co).  Writes missing from the
 * witness are treated as visible in issue order at the end.
 */
RobustnessResult checkRobustness(const std::vector<MemOp> &ops,
                                 const std::vector<OpId> &visibilityOrder);

/** Convenience overload over a full simulator execution. */
RobustnessResult checkRobustness(const ExecutionResult &res);

/** Human-readable verdict block (stable format, golden-testable). */
std::string formatRobustnessReport(const RobustnessResult &r,
                                   const std::vector<MemOp> &ops);

} // namespace wmr

#endif // WMR_DETECT_ROBUSTNESS_HH
