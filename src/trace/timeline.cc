#include "trace/timeline.hh"

#include <algorithm>

#include "common/string_util.hh"

namespace wmr {

namespace {

std::string
addrText(Addr a, const Program *prog)
{
    return prog ? prog->addrName(a) : strformat("[%u]", a);
}

/** One rendered line belonging to one processor column. */
struct Row
{
    OpId order;     ///< global position (op id)
    ProcId proc;
    std::string text;
};

std::string
opText(const MemOp &op, const Program *prog)
{
    const std::string loc = addrText(op.addr, prog);
    if (op.sync) {
        if (op.kind == OpKind::Read) {
            return strformat("%s(%s,%lld)",
                             op.acquire ? "Acq" : "SyncR",
                             loc.c_str(),
                             static_cast<long long>(op.value));
        }
        return strformat("%s(%s,%lld)",
                         op.release ? "Rel" : "SyncW", loc.c_str(),
                         static_cast<long long>(op.value));
    }
    return strformat("%s(%s,%lld)%s",
                     op.kind == OpKind::Read ? "read" : "write",
                     loc.c_str(), static_cast<long long>(op.value),
                     op.stale ? "*" : "");
}

} // namespace

std::string
renderTimeline(const ExecutionTrace &trace, const Program *prog,
               const ExecutionResult *res,
               const TimelineOptions &opts)
{
    const ProcId procs = trace.numProcs();
    std::vector<Row> rows;

    if (res != nullptr) {
        // Operation-level rendering with values, capped per event.
        for (const auto &ev : trace.events()) {
            std::size_t shown = 0;
            if (ev.kind == EventKind::Sync) {
                rows.push_back({ev.syncOp.id, ev.proc,
                                opText(res->ops[ev.syncOp.id],
                                       prog)});
                continue;
            }
            for (const OpId o : ev.memberOps) {
                if (opts.opsPerEvent && shown >= opts.opsPerEvent) {
                    rows.push_back(
                        {o, ev.proc,
                         strformat("... %u more ops",
                                   ev.opCount -
                                       static_cast<std::uint32_t>(
                                           shown))});
                    break;
                }
                rows.push_back({o, ev.proc,
                                opText(res->ops[o], prog)});
                ++shown;
            }
        }
    } else {
        for (const auto &ev : trace.events()) {
            std::string text;
            if (ev.kind == EventKind::Sync) {
                text = opText(ev.syncOp, prog);
            } else {
                text = strformat("comp(%u ops)", ev.opCount);
            }
            rows.push_back({ev.firstOp, ev.proc, std::move(text)});
        }
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.order < b.order;
              });

    const std::size_t w = opts.columnWidth;
    std::string out;
    // Header.
    for (ProcId p = 0; p < procs; ++p) {
        const std::string head = strformat("P%u", p + 1);
        out += head;
        out += std::string(w - std::min(w - 1, head.size()), ' ');
    }
    out += "\n";
    for (ProcId p = 0; p < procs; ++p)
        out += std::string(w - 1, '-') + " ";

    out += "\n";

    const OpId scpEnd = trace.firstStaleRead();
    bool boundaryDrawn = false;
    for (const auto &row : rows) {
        if (opts.markScpBoundary && !boundaryDrawn &&
            scpEnd != kNoOp && row.order >= scpEnd) {
            const std::string mark = " end of value-exact prefix ";
            std::string line(w * procs, '=');
            line.replace(2, mark.size(), mark);
            out += line + "\n";
            boundaryDrawn = true;
        }
        for (ProcId p = 0; p < procs; ++p) {
            if (p == row.proc) {
                std::string cell = row.text;
                if (cell.size() > w - 1)
                    cell.resize(w - 1);
                out += cell;
                out += std::string(w - cell.size(), ' ');
            } else {
                out += std::string(w, ' ');
            }
        }
        out += "\n";
    }
    return out;
}

} // namespace wmr
