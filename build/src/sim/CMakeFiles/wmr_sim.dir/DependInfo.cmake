
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/exec_stats.cc" "src/sim/CMakeFiles/wmr_sim.dir/exec_stats.cc.o" "gcc" "src/sim/CMakeFiles/wmr_sim.dir/exec_stats.cc.o.d"
  "/root/repo/src/sim/executor.cc" "src/sim/CMakeFiles/wmr_sim.dir/executor.cc.o" "gcc" "src/sim/CMakeFiles/wmr_sim.dir/executor.cc.o.d"
  "/root/repo/src/sim/invalidate_model.cc" "src/sim/CMakeFiles/wmr_sim.dir/invalidate_model.cc.o" "gcc" "src/sim/CMakeFiles/wmr_sim.dir/invalidate_model.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/wmr_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/wmr_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/store_buffer_model.cc" "src/sim/CMakeFiles/wmr_sim.dir/store_buffer_model.cc.o" "gcc" "src/sim/CMakeFiles/wmr_sim.dir/store_buffer_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prog/CMakeFiles/wmr_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
