/**
 * @file
 * The model matrix: simulator throughput across all seven memory
 * models and the cost of inline robustness checking.
 *
 * Two claims are measured:
 *
 *  - simulation speed is model-independent to first order — the
 *    store-buffer policies (FIFO TSO drain, per-location PSO
 *    buffers, sfence epochs) add bookkeeping, not asymptotics;
 *  - the robustness check (linear graph build + one topological
 *    sort per execution) is cheap enough to run inline with
 *    detection — its overhead is reported as a fraction of raw
 *    simulation time.
 *
 * A sanity column reruns the dekker shape fully lazy on each model:
 * SC must show zero robustness violations and every weak model at
 * least one, or the table prints ROBUSTNESS MISMATCH (the smoke
 * entry's FAIL regex).  Committed baseline is BENCH_model_matrix.json
 * (tools/bench_baselines.sh).
 */

#include "bench_util.hh"

#include <chrono>
#include <iterator>
#include <vector>

#include "detect/robustness.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Row
{
    std::string model;
    std::uint64_t events = 0;
    double simSeconds = 0;
    double robustSeconds = 0;
    std::size_t dekkerViolations = 0;
};

Row
runModel(ModelKind model, std::uint64_t executions)
{
    Row row;
    row.model = std::string(modelName(model));

    // The measured workload: seeded medium racy programs, the same
    // family the detection benches sweep.
    std::vector<ExecutionResult> results;
    results.reserve(executions);
    const auto tSim = std::chrono::steady_clock::now();
    for (std::uint64_t seed = 0; seed < executions; ++seed) {
        const Program p = randomRacyProgram(seed % 10);
        ExecOptions opts;
        opts.model = model;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        results.push_back(runProgram(p, opts));
    }
    row.simSeconds = secondsSince(tSim);
    for (const auto &res : results)
        row.events += res.ops.size();

    const auto tRob = std::chrono::steady_clock::now();
    for (const auto &res : results)
        benchmark::DoNotOptimize(checkRobustness(res).robust);
    row.robustSeconds = secondsSince(tRob);

    // Sanity: dekker fully lazy — SC robust, weak models not.
    const Program dekker = dekkerDataFlags();
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        ExecOptions opts;
        opts.model = model;
        opts.seed = seed;
        opts.drainLaziness = 1.0;
        if (!checkRobustness(runProgram(dekker, opts)).robust)
            ++row.dekkerViolations;
    }
    return row;
}

void
reproduce()
{
    const std::uint64_t executions = smokeMode() ? 60 : 2'000;

    section("simulator throughput × robustness overhead, all seven "
            "models" +
            std::string(smokeMode() ? " (smoke mode)" : ""));
    note("events/s = simulated memory operations per second; "
         "robustness overhead is the");
    note("inline SC-equivalence check as a fraction of raw "
         "simulation time.");

    std::printf("  %-6s %10s %10s %12s %12s %14s %10s\n", "model",
                "events", "sim s", "events/s", "robust s",
                "overhead", "dekker!SC");
    std::vector<Row> rows;
    bool mismatch = false;
    for (const ModelKind model : kAllModels) {
        const Row row = runModel(model, executions);
        std::printf(
            "  %-6s %10llu %10.3f %12.0f %12.3f %13.1f%% %10zu\n",
            row.model.c_str(),
            static_cast<unsigned long long>(row.events),
            row.simSeconds,
            static_cast<double>(row.events) / row.simSeconds,
            row.robustSeconds,
            100.0 * row.robustSeconds / row.simSeconds,
            row.dekkerViolations);
        const bool bad = model == ModelKind::SC
                             ? row.dekkerViolations != 0
                             : row.dekkerViolations == 0;
        mismatch = mismatch || bad;
        rows.push_back(row);
    }
    note(mismatch
             ? "!! ROBUSTNESS MISMATCH — SC flagged non-robust or "
               "a weak model showed none (regression)."
             : "robustness sanity verified: SC always robust, every "
               "weak model violates on dekker.");

    // Machine-readable block for plotting/regression tooling.
    std::printf("{\n  \"schema\": \"wmrace-model-matrix\",\n");
    std::printf("  \"executions_per_model\": %llu,\n",
                static_cast<unsigned long long>(executions));
    std::printf("  \"robustness_mismatches\": %d,\n",
                mismatch ? 1 : 0);
    std::printf("  \"results\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::printf(
            "    {\"model\": \"%s\", \"events\": %llu, "
            "\"sim_seconds\": %.4f, \"events_per_second\": %.1f, "
            "\"robustness_seconds\": %.4f, "
            "\"robustness_overhead_pct\": %.1f, "
            "\"dekker_violations\": %zu}%s\n",
            r.model.c_str(),
            static_cast<unsigned long long>(r.events), r.simSeconds,
            static_cast<double>(r.events) / r.simSeconds,
            r.robustSeconds,
            100.0 * r.robustSeconds / r.simSeconds,
            r.dekkerViolations, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
}

void
BM_RunModel(benchmark::State &state)
{
    const auto model = static_cast<ModelKind>(state.range(0));
    const Program p = randomRacyProgram(3);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        ExecOptions opts;
        opts.model = model;
        opts.seed = ++seed;
        opts.drainLaziness = 0.9;
        benchmark::DoNotOptimize(runProgram(p, opts).ops.size());
    }
}
BENCHMARK(BM_RunModel)
    ->DenseRange(0, static_cast<int>(std::size(kAllModels)) - 1)
    ->ArgName("model");

void
BM_CheckRobustness(benchmark::State &state)
{
    const Program p = dekkerDataFlags();
    ExecOptions opts;
    opts.model = ModelKind::PSO;
    opts.seed = 3;
    opts.drainLaziness = 1.0;
    const auto res = runProgram(p, opts);
    for (auto _ : state)
        benchmark::DoNotOptimize(checkRobustness(res).robust);
}
BENCHMARK(BM_CheckRobustness);

} // namespace

WMR_BENCH_MAIN(reproduce)
