/**
 * @file
 * Section 5 accuracy claim: reporting only the FIRST partitions
 * filters out the races that could never occur on a sequentially
 * consistent machine, while the naive method (report every race of
 * the weak execution) floods the programmer with them.
 *
 * For small lock-free programs the SC model checker provides exact
 * ground truth: a reported race is a FALSE ALARM when no SC
 * execution exhibits any of its static pairs.  The table compares
 * the naive and first-partition reports on that metric; the staged
 * Figure 2(b) execution is included as the paper's own worked case
 * (regions make the false-alarm volume arbitrarily large).
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "mc/explorer.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

Program
tinyRacy(std::uint64_t seed)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = 3;
    cfg.blocksPerProc = 1;
    cfg.opsPerBlock = 2;
    cfg.dataWords = 3;
    cfg.numLocks = 1;
    cfg.unlockedProb = 1.0;
    return randomProgram(cfg);
}

/** Is race @p r SC-feasible per ground truth? */
bool
feasible(const DetectionResult &det, RaceId r,
         const std::vector<MemOp> &ops, const ScGroundTruth &truth)
{
    for (const auto &pair : staticPairsOfRace(det, r, ops)) {
        if (truth.races.count(pair))
            return true;
    }
    return false;
}

void
reproduce()
{
    section("straight-line racy programs: every race is SC-feasible "
            "(baseline sanity)");
    std::printf("  %-8s %16s %16s %18s %18s\n", "program",
                "naive reported", "naive false", "first reported",
                "first false");
    std::size_t naiveTotal = 0, naiveFalse = 0, firstTotal = 0,
                firstFalse = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const Program p = tinyRacy(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 1.0;
        const auto res = runProgram(p, opts);
        const auto det = analyzeExecution(res);
        if (!det.anyDataRace())
            continue;
        const auto truth =
            exploreScExecutions(p, {.maxExecutions = 30'000});

        std::size_t nf = 0;
        for (RaceId r = 0;
             r < static_cast<RaceId>(det.races().size()); ++r) {
            if (det.races()[r].isDataRace &&
                !feasible(det, r, res.ops, truth)) {
                ++nf;
            }
        }
        std::size_t ff = 0;
        const auto reported = det.reportedRaces();
        for (const auto r : reported) {
            if (det.races()[r].isDataRace &&
                !feasible(det, r, res.ops, truth)) {
                ++ff;
            }
        }
        naiveTotal += det.numDataRaces();
        naiveFalse += nf;
        firstTotal += reported.size();
        firstFalse += ff;
    }
    std::printf("  %-8s %16zu %16zu %18zu %18zu\n", "30 progs",
                naiveTotal, naiveFalse, firstTotal, firstFalse);
    note("without data-dependent control/addressing a weak "
         "execution cannot invent");
    note("non-SC races: naive reporting is safe here and the "
         "methods coincide.");

    section("divergent executions (queue family): non-SC races "
            "appear, mc-checked");
    std::printf("  %-8s %14s %18s %20s %14s\n", "region",
                "naive races", "SCP-flag non-SC",
                "mc-unconfirmed(*)", "first-part.");
    for (const std::uint32_t n : {2u, 3u}) {
        const auto s = stageFigure2bExecution(
            {.regionSize = n, .staleOffset = n / 2});
        const auto det = analyzeExecution(s.result);
        const auto truth = exploreScExecutions(
            s.program, {.maxExecutions = 60'000});
        std::size_t nonScFlag = 0, mcUnconfirmed = 0;
        for (RaceId r = 0;
             r < static_cast<RaceId>(det.races().size()); ++r) {
            if (!det.races()[r].isDataRace)
                continue;
            nonScFlag += !det.scp().raceInScp[r];
            mcUnconfirmed +=
                !feasible(det, r, s.result.ops, truth);
        }
        std::printf("  %-8u %14zu %18zu %20zu %14zu\n", n,
                    det.races().size(), nonScFlag, mcUnconfirmed,
                    det.reportedRaces().size());
    }
    note("(*) no SC execution within the exploration bound exhibits "
         "the race's static");
    note("pairs — the region races P2/P3 are exactly the ones the "
         "SCP flags demote.");

    section("the paper's own case: Figure 2(b) region sweep");
    std::printf("  %-8s %14s %20s %22s\n", "region", "naive races",
                "naive non-SC races", "first-partition races");
    for (const std::uint32_t n : {16u, 64u, 100u, 256u}) {
        const auto s = stageFigure2bExecution(
            {.regionSize = n, .staleOffset = n / 3});
        const auto det = analyzeExecution(s.result);
        std::size_t nonSc = 0;
        for (RaceId r = 0;
             r < static_cast<RaceId>(det.races().size()); ++r) {
            nonSc += !det.scp().raceInScp[r];
        }
        std::printf("  %-8u %14zu %20zu %22zu\n", n,
                    det.races().size(), nonSc,
                    det.reportedRaces().size());
    }
    note("the region races P2/P3 'would never have occurred' on SC "
         "(Sec. 3.1): the");
    note("naive report scales with the region, the first partition "
         "stays a single race.");
}

void
BM_NaiveReport(benchmark::State &state)
{
    const auto s = stageFigure2bExecution(
        {.regionSize = 128, .staleOffset = 40});
    for (auto _ : state) {
        const auto det = analyzeExecution(s.result);
        benchmark::DoNotOptimize(det.races().size());
    }
}
BENCHMARK(BM_NaiveReport);

void
BM_FirstPartitionReport(benchmark::State &state)
{
    const auto s = stageFigure2bExecution(
        {.regionSize = 128, .staleOffset = 40});
    for (auto _ : state) {
        const auto det = analyzeExecution(s.result);
        benchmark::DoNotOptimize(det.reportedRaces().size());
    }
}
BENCHMARK(BM_FirstPartitionReport);

} // namespace

WMR_BENCH_MAIN(reproduce)
