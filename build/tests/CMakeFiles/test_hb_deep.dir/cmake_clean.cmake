file(REMOVE_RECURSE
  "CMakeFiles/test_hb_deep.dir/test_hb_deep.cc.o"
  "CMakeFiles/test_hb_deep.dir/test_hb_deep.cc.o.d"
  "test_hb_deep"
  "test_hb_deep.pdb"
  "test_hb_deep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hb_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
