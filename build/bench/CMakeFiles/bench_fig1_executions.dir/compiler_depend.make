# Empty compiler generated dependencies file for bench_fig1_executions.
# This may be replaced when dependencies are built.
