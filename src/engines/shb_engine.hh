/**
 * @file
 * SHB engine: single-pass, sound beyond the first race.
 *
 * Motivated by "What Happens-After the First Race?" (PAPERS.md): a
 * detector that reports only the first race leaves everything after
 * it unvetted, while naively reporting later hb-races risks
 * artifacts.  This engine walks the event stream once maintaining
 * the hb1 order with vector clocks (po ticks the issuing processor,
 * a paired acquire joins the release's clock snapshot) and keeps a
 * per-variable LAST-WRITE full vector clock; every hb1-unordered
 * conflicting pair is reported, together with per-variable
 * first-race attribution (the earliest race on each variable, the
 * anchor SHB's soundness argument is stated against).
 *
 * Deliberate adaptation: textbook SHB additionally joins the
 * last-write clock into a reader's clock (reads-from edges).  The
 * Section-4.1 trace records no per-operation reads-from for data
 * operations — computation events carry only READ/WRITE sets — and
 * such joins would ORDER pairs that hb1 reports (breaking the
 * reported(hb1) ⊆ races(shb) guarantee this family asserts), so the
 * engine keeps last-write clocks as attribution metadata without
 * joining them.  The race SET therefore equals hb1's full race set
 * exactly — which is what makes this engine a true differential
 * twin of the graph-based finder — while the REPORTING policy
 * (everything, first-per-variable annotated) is SHB's, sound past
 * the first partition.  See docs/DETECTORS.md.
 */

#ifndef WMR_ENGINES_SHB_ENGINE_HH
#define WMR_ENGINES_SHB_ENGINE_HH

#include <unordered_map>

#include "engines/clock_hist.hh"
#include "engines/engine.hh"
#include "hb/vector_clock.hh"

namespace wmr::engines {

/** Single-pass SHB detector over the Section-4.1 event stream. */
class ShbEngine : public DetectorEngine
{
  public:
    const char *name() const override { return "shb"; }

    /** The verdict-block semantics line (shared with the
     *  `check --stream --engine shb` path, which synthesizes an SHB
     *  verdict from the streaming race set). */
    static const char *semanticsLine();

    void begin(const EngineTraceInfo &info) override;
    void feed(const Event &ev) override;
    EngineVerdict finish() override;

  private:
    ProcId procs_ = 0;
    std::vector<VectorClock> clock_;
    std::vector<std::uint64_t> epochs_;

    /** Clock snapshots of sync events (so1 join sources). */
    std::unordered_map<EventId, VectorClock> syncSnap_;

    /** Per-variable last-write clock (SHB attribution metadata). */
    std::unordered_map<Addr, VectorClock> lastWrite_;

    std::unordered_map<Addr, detail::AddrHist> hist_;
    detail::RaceTable table_;

    std::vector<Addr> writes_, reads_; // scratch
    std::uint64_t eventsSeen_ = 0;
};

} // namespace wmr::engines

#endif // WMR_ENGINES_SHB_ENGINE_HH
