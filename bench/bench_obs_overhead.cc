/**
 * @file
 * Overhead budget of the observability layer (src/obs), backing the
 * header's claim that instrumentation is shippable:
 *
 *  (1) a DISABLED span costs one inlined relaxed load and a branch
 *      (single-digit ns), a counter update one relaxed fetch_add;
 *  (2) an ENABLED span costs tens of ns (clock reads + the thread-
 *      local log append) — paid only while collection is on;
 *  (3) end-to-end budget: the hot paths wrap STAGE-sized work, so
 *      (spans per analysis run) x (disabled span cost) must stay
 *      under 1% of one analysis wall time.  The reproduction
 *      computes that percentage and fails loudly past the budget.
 */

#include "bench_util.hh"

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "detect/analysis.hh"
#include "obs/obs.hh"
#include "workload/synthetic_trace.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

using Clock = std::chrono::steady_clock;

double
nsPerOp(Clock::time_point t0, Clock::time_point t1, std::uint64_t n)
{
    return std::chrono::duration<double, std::nano>(t1 - t0)
               .count() /
           static_cast<double>(n);
}

/** ns per obs::Span with collection off (the shipping default). */
double
disabledSpanNs(std::uint64_t n)
{
    wmr_assert(!obs::enabled());
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        obs::Span s("bench.obs.off");
        benchmark::DoNotOptimize(&s);
    }
    return nsPerOp(t0, Clock::now(), n);
}

/** ns per counter increment (counters are live even when off). */
double
counterAddNs(std::uint64_t n)
{
    obs::Counter c = obs::counter("bench.obs.counter");
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i)
        c.inc();
    const auto t1 = Clock::now();
    benchmark::DoNotOptimize(c.value());
    return nsPerOp(t0, t1, n);
}

/** ns per obs::Span while collection is on (log append + clocks). */
double
enabledSpanNs(std::uint64_t n)
{
    obs::setEnabled(true);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        obs::Span s("bench.obs.on");
        benchmark::DoNotOptimize(&s);
    }
    const auto t1 = Clock::now();
    obs::setEnabled(false);
    obs::resetForTest(); // drop the n recorded spans
    return nsPerOp(t0, t1, n);
}

const ExecutionTrace &
benchTrace()
{
    static const ExecutionTrace trace = [] {
        SyntheticTraceOptions opts;
        opts.procs = 4;
        opts.eventsPerProc = smokeMode() ? 250u : 2'000u;
        opts.seed = 17;
        return makeSyntheticTrace(opts);
    }();
    return trace;
}

/** Wall seconds of one single-threaded analyzeTrace, best of 3. */
double
analysisWallSeconds()
{
    AnalysisOptions opts;
    opts.threads = 1;
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = Clock::now();
        const DetectionResult det = analyzeTrace(benchTrace(), opts);
        const double wall =
            std::chrono::duration<double>(Clock::now() - t0).count();
        benchmark::DoNotOptimize(det.races().size());
        if (best == 0 || wall < best)
            best = wall;
    }
    return best;
}

/** Spans one analysis run records (counted, not assumed). */
std::uint64_t
spansPerAnalysis()
{
    obs::resetForTest();
    obs::setEnabled(true);
    AnalysisOptions opts;
    opts.threads = 1;
    const DetectionResult det = analyzeTrace(benchTrace(), opts);
    benchmark::DoNotOptimize(det.races().size());
    obs::setEnabled(false);
    std::uint64_t spans = 0;
    for (const auto &t : obs::spanSnapshot())
        spans += t.spans.size();
    obs::resetForTest();
    return spans;
}

void
reproduce()
{
    const std::uint64_t n = smokeMode() ? 1u << 14 : 1u << 21;
    const std::uint64_t nOn = smokeMode() ? 1u << 12 : 1u << 16;

    section("(1)+(2) obs primitive cost per operation");
    const double off = disabledSpanNs(n);
    const double ctr = counterAddNs(n);
    const double on = enabledSpanNs(nOn);
    std::printf("  %-28s %8.2f ns/op\n", "span, collection OFF", off);
    std::printf("  %-28s %8.2f ns/op\n", "counter add (always on)",
                ctr);
    std::printf("  %-28s %8.2f ns/op\n", "span, collection ON", on);
    note("OFF = one relaxed load + branch; ON pays two clock reads "
         "and a log append.");

    section("(3) disabled-mode budget vs one analysis run");
    const double wall = analysisWallSeconds();
    const std::uint64_t spans = spansPerAnalysis();
    // Counters are a handful of relaxed adds per run — fold them in
    // at the measured add cost so the estimate is not flattered.
    const double perRunNs =
        static_cast<double>(spans) * off + 16.0 * ctr;
    const double pct = perRunNs / (wall * 1e9) * 100.0;
    std::printf("  %-28s %8zu\n", "spans per analysis run",
                static_cast<std::size_t>(spans));
    std::printf("  %-28s %8.3f ms\n", "analysis wall (1 thread)",
                wall * 1e3);
    std::printf("  %-28s %8.5f %%  (budget 1%%)\n",
                "disabled-mode overhead", pct);
    if (pct < 1.0)
        note("disabled-mode overhead within budget (<1%): spans "
             "wrap stage-sized work.");
    else
        note("!! OBS OVERHEAD BUDGET EXCEEDED — a hot path is "
             "wrapping per-event work in spans");

    // Machine-readable block for the committed BENCH_*.json
    // baselines (tools/bench_baselines.sh extracts it).
    std::printf("{\n  \"schema\": \"wmrace-obs-overhead\",\n");
    std::printf("  \"span_disabled_ns\": %.3f,\n", off);
    std::printf("  \"counter_add_ns\": %.3f,\n", ctr);
    std::printf("  \"span_enabled_ns\": %.3f,\n", on);
    std::printf("  \"spans_per_analysis\": %llu,\n",
                static_cast<unsigned long long>(spans));
    std::printf("  \"analysis_wall_seconds\": %.6f,\n", wall);
    std::printf("  \"disabled_overhead_percent\": %.5f,\n", pct);
    std::printf("  \"within_budget\": %s\n}\n",
                pct < 1.0 ? "true" : "false");
}

// --- google-benchmark timings ----------------------------------
// (No enabled-span BM: an open-iteration-count loop would grow the
// span log without bound; the fixed-n reproduction above covers it.)

void
BM_SpanDisabled(benchmark::State &state)
{
    for (auto _ : state) {
        obs::Span s("bench.obs.bm_off");
        benchmark::DoNotOptimize(&s);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

void
BM_CounterAdd(benchmark::State &state)
{
    obs::Counter c = obs::counter("bench.obs.bm_counter");
    for (auto _ : state)
        c.inc();
    benchmark::DoNotOptimize(c.value());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void
BM_StagedSpanDisabled(benchmark::State &state)
{
    double sink = 0;
    for (auto _ : state) {
        obs::StagedSpan s("bench.obs.bm_staged", sink);
        benchmark::DoNotOptimize(&s);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StagedSpanDisabled);

} // namespace

WMR_BENCH_MAIN(reproduce)
