
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/aggregate_report.cc" "src/pipeline/CMakeFiles/wmr_pipeline.dir/aggregate_report.cc.o" "gcc" "src/pipeline/CMakeFiles/wmr_pipeline.dir/aggregate_report.cc.o.d"
  "/root/repo/src/pipeline/batch_runner.cc" "src/pipeline/CMakeFiles/wmr_pipeline.dir/batch_runner.cc.o" "gcc" "src/pipeline/CMakeFiles/wmr_pipeline.dir/batch_runner.cc.o.d"
  "/root/repo/src/pipeline/metrics.cc" "src/pipeline/CMakeFiles/wmr_pipeline.dir/metrics.cc.o" "gcc" "src/pipeline/CMakeFiles/wmr_pipeline.dir/metrics.cc.o.d"
  "/root/repo/src/pipeline/trace_corpus.cc" "src/pipeline/CMakeFiles/wmr_pipeline.dir/trace_corpus.cc.o" "gcc" "src/pipeline/CMakeFiles/wmr_pipeline.dir/trace_corpus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/wmr_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wmr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hb/CMakeFiles/wmr_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/wmr_prog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
