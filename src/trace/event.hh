/**
 * @file
 * The event abstraction of Section 4.1.
 *
 * A processor's execution is viewed as a sequence of events: each
 * synchronization operation is its own *sync event*, and each maximal
 * run of consecutively executed data operations is one *computation
 * event* carrying READ and WRITE sets (bit-vectors over the shared
 * address universe) instead of per-operation traces.
 */

#ifndef WMR_TRACE_EVENT_HH
#define WMR_TRACE_EVENT_HH

#include <vector>

#include "common/dense_bitset.hh"
#include "common/types.hh"
#include "sim/mem_op.hh"

namespace wmr {

/** Kind of a trace event. */
enum class EventKind : std::uint8_t { Sync, Computation };

/** One trace event (sync operation or computation block). */
struct Event
{
    EventId id = kNoEvent;
    EventKind kind = EventKind::Computation;
    ProcId proc = kNoProc;

    /** Index of this event within its processor's event sequence. */
    std::uint32_t indexInProc = 0;

    /** First and last member operation ids (inclusive). */
    OpId firstOp = kNoOp;
    OpId lastOp = kNoOp;

    /** Number of member memory operations. */
    std::uint32_t opCount = 0;

    // --- Sync-event payload -------------------------------------
    /** The sync operation itself (valid when kind == Sync). */
    MemOp syncOp;

    /**
     * For acquire sync reads: event id of the RELEASE sync event
     * whose write supplied the value (Def. 2.1(3)), or kNoEvent when
     * the value came from the initial image or a non-release write.
     * This is the so1 edge source (Def. 2.2).
     */
    EventId pairedRelease = kNoEvent;

    // --- Computation-event payload ------------------------------
    /** Shared words read by the event's data operations. */
    DenseBitset readSet;

    /** Shared words written by the event's data operations. */
    DenseBitset writeSet;

    /**
     * Optional: ids of the member operations (retained when the
     * trace is built with keepMemberOps, used by SCP validation and
     * lower-level race reporting; the production tracing mode drops
     * them, exactly as the paper's bit-vector scheme does).
     */
    std::vector<OpId> memberOps;

    /** @return whether the event reads @p addr. */
    bool
    reads(Addr addr) const
    {
        if (kind == EventKind::Sync)
            return syncOp.kind == OpKind::Read && syncOp.addr == addr;
        return readSet.test(addr);
    }

    /** @return whether the event writes @p addr. */
    bool
    writes(Addr addr) const
    {
        if (kind == EventKind::Sync)
            return syncOp.kind == OpKind::Write && syncOp.addr == addr;
        return writeSet.test(addr);
    }
};

/**
 * @return whether events @p a and @p b conflict: they access a common
 * location at least one of them writes (Sec. 4.1).
 */
bool eventsConflict(const Event &a, const Event &b);

/**
 * @return the common locations of @p a and @p b where at least one of
 * the two writes — the "race addresses" of the pair.
 */
std::vector<Addr> conflictAddrs(const Event &a, const Event &b);

} // namespace wmr

#endif // WMR_TRACE_EVENT_HH
