/**
 * @file
 * The paper's running example, end to end: debugging the work-queue
 * program of Figure 2.
 *
 * A programmer forgot the Test&Set critical sections around a shared
 * queue.  On a weakly ordered machine the bug manifests bizarrely:
 * processor P2 starts working on a region that overlaps P3's, and a
 * naive race detector would drown the programmer in races between P2
 * and P3 — races that can NEVER happen on a sequentially consistent
 * machine and say nothing about the real bug.
 *
 * This example walks the paper's method: stage the weak execution of
 * Figure 2(b), run the post-mortem analysis, and show how the FIRST
 * partition points straight at the missing synchronization while the
 * region races are demoted to a non-first partition.  It finishes by
 * applying the fix and re-running.
 */

#include <cstdio>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "mc/scp_witness.hh"
#include "trace/timeline.hh"
#include "workload/scenarios.hh"

namespace {

void
banner(const char *text)
{
    std::printf("\n================================================="
                "=====\n%s\n================================================"
                "======\n",
                text);
}

} // namespace

int
main()
{
    using namespace wmr;

    banner("The buggy program (Figure 2a: Test&Set missing)");
    const Scenario s = stageFigure2bExecution();
    std::printf("%s\n", s.program.disassembleAll().c_str());

    banner("One weak (WO) execution of it (Figure 2b)");
    {
        const auto trace =
            buildTrace(s.result, {.keepMemberOps = true});
        std::printf("%s\n",
                    renderTimeline(trace, &s.program, &s.result)
                        .c_str());
    }
    std::printf(
        "P2 read QEmpty=0 but dequeued the STALE offset %lld "
        "(the paper's 37)\nand went to work on region "
        "[37,137) while P3 works on [0,100).\n",
        static_cast<long long>(s.result.finalRegs[1][2]));
    std::printf("stale reads: %llu, first at operation %llu\n",
                static_cast<unsigned long long>(s.result.staleReads),
                static_cast<unsigned long long>(
                    s.result.firstStaleRead));

    banner("Post-mortem analysis (Section 4)");
    const DetectionResult det = analyzeExecution(s.result);
    std::printf("%s", formatReport(det, &s.program).c_str());

    banner("Why only the first partition matters");
    std::printf(
        "The region races (P2 vs P3) are labelled non-SCP: no\n"
        "sequentially consistent execution exhibits them, because on\n"
        "an SC machine P2 could never have dequeued 37.  Reporting\n"
        "them would send the programmer chasing ghosts.  The first\n"
        "partition — the Q/QEmpty races between P1 and P2 — is the\n"
        "real bug: the missing critical section.\n");

    banner("Constructive evidence (the SCP witness Eseq)");
    const ScpWitness w = buildScpWitness(s.program, s.result);
    std::printf(
        "replayed the SC prefix (%llu ops) and continued under SC:\n"
        "prefix matched: %s; Eseq races found: %zu static pair(s)\n",
        static_cast<unsigned long long>(w.prefixOps),
        w.prefixMatched ? "yes" : "NO (bug!)", w.eseqRaces.size());

    banner("The fix: put the Test&Set back (Figure 2a corrected)");
    const Program fixedProg = figure2Queue(
        {.regionSize = 100, .staleOffset = 37, .withTestAndSet = true});
    bool anyRace = false;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        const auto res = runProgram(fixedProg, opts);
        anyRace |= analyzeExecution(res).anyDataRace();
    }
    std::printf("20 weak executions of the corrected program: %s\n",
                anyRace ? "RACES REMAIN (bug!)"
                        : "no data races — every execution "
                          "sequentially consistent (Condition "
                          "3.4(1))");
    return anyRace ? 1 : 0;
}
