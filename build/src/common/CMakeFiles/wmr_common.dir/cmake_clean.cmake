file(REMOVE_RECURSE
  "CMakeFiles/wmr_common.dir/dense_bitset.cc.o"
  "CMakeFiles/wmr_common.dir/dense_bitset.cc.o.d"
  "CMakeFiles/wmr_common.dir/logging.cc.o"
  "CMakeFiles/wmr_common.dir/logging.cc.o.d"
  "CMakeFiles/wmr_common.dir/string_util.cc.o"
  "CMakeFiles/wmr_common.dir/string_util.cc.o.d"
  "libwmr_common.a"
  "libwmr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
