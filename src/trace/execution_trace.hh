/**
 * @file
 * ExecutionTrace: the event-level record the post-mortem detector
 * analyzes, and its builder from a simulated ExecutionResult.
 *
 * This is exactly the information Section 4.1 says the instrumented
 * program must produce:
 *  (1) the execution order of events issued by the same processor
 *      (the per-processor event sequences),
 *  (2) the relative execution order of synchronization events on the
 *      same location (the per-location sync order), and
 *  (3) the READ and WRITE sets of each computation event.
 * Plus the observed release→acquire pairing needed to build so1.
 */

#ifndef WMR_TRACE_EXECUTION_TRACE_HH
#define WMR_TRACE_EXECUTION_TRACE_HH

#include <map>
#include <vector>

#include "sim/executor.hh"
#include "trace/event.hh"

namespace wmr {

/** Options controlling how a trace is built from an execution. */
struct TraceBuildOptions
{
    /**
     * Retain member-operation ids inside computation events.  The
     * paper's bit-vector tracing drops them (cheaper); validation
     * tooling keeps them for op-level SCP checks.
     */
    bool keepMemberOps = false;

    /**
     * Maximum data operations merged into one computation event.
     * The paper's events span between two sync operations; capping
     * the run length (0 = unlimited) models finer-grained tracing.
     */
    std::uint32_t maxCompRun = 0;
};

/** Event-level record of one execution. */
class ExecutionTrace
{
  public:
    /** @return all events; Event::id indexes this vector. */
    const std::vector<Event> &events() const { return events_; }

    /** @return event by id. */
    const Event &event(EventId id) const { return events_.at(id); }

    /** @return event ids of @p proc, in program order. */
    const std::vector<EventId> &
    procEvents(ProcId proc) const
    {
        return perProc_.at(proc);
    }

    /** @return number of processors. */
    ProcId numProcs() const
    {
        return static_cast<ProcId>(perProc_.size());
    }

    /** @return shared address universe size. */
    Addr memWords() const { return memWords_; }

    /** @return per-location order of sync events. */
    const std::map<Addr, std::vector<EventId>> &
    syncOrder() const
    {
        return syncOrder_;
    }

    /**
     * @return id of the first stale read of the underlying execution
     * (kNoOp when the execution is SC-witnessed end to end).  This is
     * carried in the trace for SCP analysis.
     */
    OpId firstStaleRead() const { return firstStaleRead_; }

    /** @return total memory operations the events summarize. */
    std::uint64_t totalOps() const { return totalOps_; }

    /** @return number of sync events. */
    std::uint32_t
    numSyncEvents() const
    {
        return numSync_;
    }

    // Mutators used by the builder and the trace reader.
    void setShape(ProcId procs, Addr words);
    void setFirstStaleRead(OpId op) { firstStaleRead_ = op; }
    void setTotalOps(std::uint64_t n) { totalOps_ = n; }

    /** Append @p ev (id and indexInProc are assigned here). */
    EventId addEvent(Event ev);

    /** Mutable access for builders (pairing resolution). */
    Event &mutableEvent(EventId id) { return events_.at(id); }

  private:
    std::vector<Event> events_;
    std::vector<std::vector<EventId>> perProc_;
    std::map<Addr, std::vector<EventId>> syncOrder_;
    Addr memWords_ = 0;
    OpId firstStaleRead_ = kNoOp;
    std::uint64_t totalOps_ = 0;
    std::uint32_t numSync_ = 0;
};

/**
 * Build the event trace of @p res, the instrumented-execution step of
 * Section 4.1.
 */
ExecutionTrace buildTrace(const ExecutionResult &res,
                          const TraceBuildOptions &opts = {});

} // namespace wmr

#endif // WMR_TRACE_EXECUTION_TRACE_HH
