#include "stream/stream_analyzer.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <map>
#include <thread>
#include <unordered_set>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "hb/scc.hh"
#include "obs/obs.hh"

namespace wmr {

namespace {

/** Conservative SCP membership (the ops==nullptr path of
 *  analyzeScp): Full strictly inside the base prefix, Partial when
 *  straddling the boundary, Outside beyond it. */
enum class Membership : std::uint8_t
{
    Full,
    Partial,
    Outside,
};

Membership
membershipOf(OpId firstOp, OpId lastOp, std::uint64_t scpEndOp)
{
    if (lastOp < scpEndOp)
        return Membership::Full;
    if (firstOp < scpEndOp)
        return Membership::Partial;
    return Membership::Outside;
}

} // namespace

StreamAnalyzer::StreamAnalyzer(StreamOptions opts)
    : opts_(std::move(opts))
{
    if (opts_.windowSegments == 0)
        opts_.windowSegments = 1;
}

StreamAnalyzer::~StreamAnalyzer() = default;

StreamAnalyzer::ProcState &
StreamAnalyzer::procAt(ProcId p)
{
    if (p >= procs_.size())
        procs_.resize(static_cast<std::size_t>(p) + 1);
    return procs_[p];
}

bool
StreamAnalyzer::streamFail(const std::string &message)
{
    if (!failed_) {
        failed_ = true;
        error_ = message;
    }
    return false;
}

bool
StreamAnalyzer::addSegment(const SegTailSegment &seg)
{
    if (failed_ || finished_)
        return !failed_;

    for (const SegFileEvent &fe : seg.events)
        ingest(fe);
    droppedSoFar_ = seg.droppedSoFar;

    ++segments_;
    obs::counter("stream.segments").inc();

    popIdFrontier(/*flushAll=*/false);
    if (segments_ % opts_.windowSegments == 0) {
        gcWindow(/*final=*/false);
        if (opts_.onWindow) {
            StreamProgress p;
            p.segments = segments_;
            p.events = eventsTotal_;
            p.racesSoFar = races_.size();
            p.eventsResident = live_.size();
            p.watermarkLag = watermarkLag_;
            p.windowsRetired = windowsRetired_;
            opts_.onWindow(p);
        }
    }
    updateGauges();
    return true;
}

void
StreamAnalyzer::ingest(const SegFileEvent &fe)
{
    const std::uint64_t ord = nextOrdinal_++;
    const bool isSync = fe.kind == EventKind::Sync;
    syncByOrdinal_.push_back(isSync);

    // Shape tracking (the strict FIN-shape check runs at finish()).
    const ProcId evProcs = static_cast<ProcId>(fe.proc + 1);
    Addr evWords = 0;
    if (isSync) {
        evWords = fe.syncOp.addr + 1;
    } else {
        if (!fe.readWords.empty())
            evWords = fe.readWords.back() + 1;
        if (!fe.writeWords.empty())
            evWords = std::max(evWords, fe.writeWords.back() + 1);
    }
    needProcs_ = std::max(needProcs_, evProcs);
    needWords_ = std::max(needWords_, evWords);

    ++eventsTotal_;
    opsSeen_ += fe.opCount;
    if (isSync)
        ++syncEvents_;
    obs::counter("stream.events").inc();

    // The id frontier assumed no future key could undercut what it
    // already ranked; an op range landing below an assigned rank
    // breaks stable_sort equivalence (no wmrace writer interleaves
    // op ranges out of file order, but a foreign one could).
    if (fe.firstOp != kNoOp && fe.firstOp < maxPoppedFirstOp_) {
        exact_ = false;
        obs::counter("stream.order_violations").inc();
    }

    const bool newProc =
        fe.proc >= procs_.size() || procs_[fe.proc].epochs == 0;
    ProcState &ps = procAt(fe.proc);

    auto owned = std::make_unique<LiveEvent>();
    LiveEvent *e = owned.get();
    e->ordinal = ord;
    e->proc = fe.proc;
    e->kind = fe.kind;
    e->firstOp = fe.firstOp;
    e->lastOp = fe.lastOp;
    e->opCount = fe.opCount;
    e->syncOp = fe.syncOp;
    e->reads4.assign(
        fe.readWords.begin(),
        fe.readWords.begin() +
            std::min<std::size_t>(4, fe.readWords.size()));
    e->writes4.assign(
        fe.writeWords.begin(),
        fe.writeWords.begin() +
            std::min<std::size_t>(4, fe.writeWords.size()));

    // so1: join the paired release's clock snapshot.  A retired
    // release's snapshot is dominated by every live processor's
    // clock — ours included — so the join would be a no-op and the
    // snapshot is safe to have dropped.
    if (isSync && fe.pairing != 0) {
        const std::uint64_t target = fe.pairing - 1;
        const bool resolvable = target < ord && syncByOrdinal_[target];
        if (resolvable) {
            const auto it = live_.find(target);
            if (it != live_.end())
                ps.clock.join(it->second->clock);
        } else {
            ++unresolvedPairings_;
            obs::counter("stream.unresolved_pairings").inc();
            if (target >= ord) {
                // A forward/self reference: the whole-trace reader
                // (which sees the full file) could resolve it; a
                // stream cannot.  No wmrace writer emits one.
                exact_ = false;
                obs::counter("stream.order_violations").inc();
            }
            // Recorded regardless of the current strictness: a live
            // recording decides strict vs. salvage only after the
            // child exits (setStrict()), so the evidence must exist
            // either way.
            if (pairingError_.empty()) {
                pairingError_ = strformat(
                    "segmented trace: event pairing %llu unresolvable",
                    static_cast<unsigned long long>(fe.pairing));
            }
        }
    }

    const std::uint32_t epoch = ++ps.epochs;
    e->epoch = epoch;
    ps.clock.set(fe.proc, epoch);
    e->clock = ps.clock;

    // Retire fence: a processor born after retirement started must
    // be hb1-after everything already retired, or retired events may
    // have raced it behind our back.
    if (newProc) {
        for (ProcId p = 0; p < procs_.size(); ++p) {
            if (procs_[p].retiredEpochs > 0 &&
                e->clock.get(p) < procs_[p].retiredEpochs) {
                exact_ = false;
                obs::counter("stream.unsafe_proc_birth").inc();
                break;
            }
        }
    }

    // Race detection against the resident history.  Every hb1 edge
    // points forward in file order, so the only possible ordering is
    // u hb1 e, answered by one epoch-vs-clock comparison.
    std::unordered_map<std::uint64_t, std::size_t> racyIdx;
    std::vector<std::pair<LiveEvent *, std::vector<Addr>>> racy;
    std::unordered_set<std::uint64_t> orderedMemo;

    const auto consider = [&](LiveEvent *u, Addr a) {
        if (u->proc == e->proc)
            return; // po-ordered for sure
        const bool isData = u->kind == EventKind::Computation ||
                            e->kind == EventKind::Computation;
        if (!isData && !opts_.includeSyncSyncRaces)
            return;
        const auto it = racyIdx.find(u->ordinal);
        if (it != racyIdx.end()) {
            racy[it->second].second.push_back(a);
            return;
        }
        if (orderedMemo.count(u->ordinal))
            return;
        if (e->clock.get(u->proc) >= u->epoch) {
            orderedMemo.insert(u->ordinal);
            return;
        }
        racyIdx.emplace(u->ordinal, racy.size());
        racy.emplace_back(u, std::vector<Addr>{a});
    };

    const auto writerPass = [&](Addr a) {
        const auto it = hist_.find(a);
        if (it == hist_.end())
            return;
        for (LiveEvent *u : it->second.writers)
            consider(u, a);
        for (LiveEvent *u : it->second.readers)
            consider(u, a);
    };
    const auto readerPass = [&](Addr a) {
        const auto it = hist_.find(a);
        if (it == hist_.end())
            return;
        for (LiveEvent *u : it->second.writers)
            consider(u, a);
    };

    // readers lists hold events reading but not writing a word, the
    // same asymmetry findRaces() indexes by.
    std::vector<Addr> readsOnly;
    if (!isSync) {
        readsOnly.reserve(fe.readWords.size());
        std::set_difference(fe.readWords.begin(), fe.readWords.end(),
                            fe.writeWords.begin(),
                            fe.writeWords.end(),
                            std::back_inserter(readsOnly));
    }

    if (isSync) {
        if (fe.syncOp.kind == OpKind::Write)
            writerPass(fe.syncOp.addr);
        else
            readerPass(fe.syncOp.addr);
    } else {
        for (const Addr a : fe.writeWords)
            writerPass(a);
        for (const Addr a : readsOnly)
            readerPass(a);
    }

    // Enter the history only after enumeration (no self-pairs).
    if (isSync) {
        auto &h = hist_[fe.syncOp.addr];
        (fe.syncOp.kind == OpKind::Write ? h.writers : h.readers)
            .push_back(e);
        e->histAddrs.assign(1, fe.syncOp.addr);
    } else {
        for (const Addr a : fe.writeWords)
            hist_[a].writers.push_back(e);
        for (const Addr a : readsOnly)
            hist_[a].readers.push_back(e);
        // writeWords and readsOnly are disjoint by construction.
        e->histAddrs.reserve(fe.writeWords.size() + readsOnly.size());
        e->histAddrs.assign(fe.writeWords.begin(),
                            fe.writeWords.end());
        e->histAddrs.insert(e->histAddrs.end(), readsOnly.begin(),
                            readsOnly.end());
    }

    for (auto &[u, addrs] : racy) {
        StreamRace r;
        r.ordA = u->ordinal;
        r.ordB = ord;
        r.addrs = std::move(addrs);
        r.isData = u->kind == EventKind::Computation ||
                   e->kind == EventKind::Computation;
        races_.push_back(std::move(r));
        u->racy = true;
        e->racy = true;
        obs::counter("stream.races").inc();
    }

    idHeap_.push({fe.firstOp, ord});
    if (fe.lastOp != kNoOp)
        ps.maxLastOp = std::max(ps.maxLastOp, fe.lastOp);
    ps.window.push_back(e);
    live_.emplace(ord, std::move(owned));
    peakResident_ =
        std::max<std::uint64_t>(peakResident_, live_.size());
}

void
StreamAnalyzer::popIdFrontier(bool flushAll)
{
    // An id is final once no processor can still produce a smaller
    // (firstOp, ordinal) key: every future event of processor p has
    // firstOp > maxLastOp_p, and a future equal firstOp would carry
    // a larger ordinal (stable order preserved).
    OpId bound = kNoOp;
    if (!flushAll) {
        bool any = false;
        for (const ProcState &ps : procs_) {
            if (ps.epochs == 0)
                continue;
            any = true;
            bound = std::min(bound, ps.maxLastOp + 1);
        }
        if (!any)
            return;
    }
    while (!idHeap_.empty()) {
        const auto [firstOp, ord] = idHeap_.top();
        if (!flushAll && (firstOp == kNoOp || firstOp > bound))
            break;
        idHeap_.pop();
        if (firstOp != kNoOp)
            maxPoppedFirstOp_ = std::max(maxPoppedFirstOp_, firstOp);
        const auto it = live_.find(ord);
        wmr_assert(it != live_.end());
        LiveEvent *e = it->second.get();
        e->finalId = nextId_++;
        e->popped = true;
        if (e->retired && !e->racy)
            live_.erase(it);
    }
}

void
StreamAnalyzer::gcWindow(bool final)
{
    const std::size_t np = procs_.size();
    if (np == 0)
        return;

    // Watermark: W[p] = the least any live processor's clock has
    // advanced past p.  Every event at or under it is hb1-before
    // every future event (a future event extends some processor's
    // current clock).
    std::vector<std::uint64_t> wm(
        np, std::numeric_limits<std::uint64_t>::max());
    bool anyProc = false;
    for (const ProcState &q : procs_) {
        if (q.epochs == 0)
            continue;
        anyProc = true;
        for (ProcId p = 0; p < np; ++p)
            wm[p] = std::min(wm[p], q.clock.get(p));
    }
    if (!anyProc)
        return;

    std::vector<std::uint64_t> toFree;
    std::vector<Addr> touched;
    bool anyRetired = false;
    for (ProcId p = 0; p < np; ++p) {
        ProcState &ps = procs_[p];
        const std::uint64_t limit =
            final ? std::numeric_limits<std::uint64_t>::max() : wm[p];
        while (!ps.window.empty() &&
               ps.window.front()->epoch <= limit) {
            LiveEvent *e = ps.window.front();
            ps.window.pop_front();
            e->retired = true;
            ps.retiredEpochs = e->epoch;
            anyRetired = true;
            touched.insert(touched.end(), e->histAddrs.begin(),
                           e->histAddrs.end());
            std::vector<Addr>().swap(e->histAddrs);
            if (e->popped && !e->racy)
                toFree.push_back(e->ordinal);
        }
    }

    if (anyRetired) {
        // Compact exactly the history lists the retiring events
        // occupy — GC cost tracks retired work, not the address
        // universe — then free (compaction still reads the retiring
        // events through their pointers).
        const auto prune = [](std::vector<LiveEvent *> &v) {
            v.erase(std::remove_if(v.begin(), v.end(),
                                   [](const LiveEvent *e) {
                                       return e->retired;
                                   }),
                    v.end());
        };
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        for (const Addr a : touched) {
            const auto it = hist_.find(a);
            if (it == hist_.end())
                continue;
            prune(it->second.writers);
            prune(it->second.readers);
            if (it->second.writers.empty() &&
                it->second.readers.empty())
                hist_.erase(it);
        }
        for (const std::uint64_t ord : toFree)
            live_.erase(ord);
        ++windowsRetired_;
        obs::counter("stream.windows_retired").inc();
    }

    std::uint64_t lag = 0;
    for (ProcId p = 0; p < np; ++p) {
        if (procs_[p].epochs == 0)
            continue;
        lag = std::max<std::uint64_t>(lag, procs_[p].epochs - wm[p]);
    }
    watermarkLag_ = final ? 0 : lag;
}

void
StreamAnalyzer::updateGauges()
{
    obs::gauge("stream.events_resident").set(live_.size());
    obs::gauge("stream.peak_resident").max(peakResident_);
    obs::gauge("stream.watermark_lag").set(watermarkLag_);
}

StreamResult
StreamAnalyzer::finish(bool finSeen, const SegShape &fin,
                       const SalvageInfo &scanSalvage)
{
    StreamResult res;
    finished_ = true;
    if (failed_) {
        res.error = error_;
        return res;
    }

    // Strict checks in the whole-trace reader's precedence: shape
    // first, pairing second (scan-level errors were the caller's).
    if (opts_.strict && finSeen &&
        (needProcs_ > fin.procs || needWords_ > fin.memWords)) {
        res.error = strformat(
            "segmented trace: event exceeds the FIN shape "
            "(%u procs, %u words)",
            static_cast<unsigned>(fin.procs),
            static_cast<unsigned>(fin.memWords));
        return res;
    }
    if (opts_.strict && !pairingError_.empty()) {
        res.error = pairingError_;
        return res;
    }

    popIdFrontier(/*flushAll=*/true);
    gcWindow(/*final=*/true);
    updateGauges();

    const std::uint64_t totalOps = finSeen ? fin.totalOps : opsSeen_;
    const OpId firstStale = finSeen ? fin.firstStaleRead : kNoOp;

    // After the final GC only pinned racy events remain resident.
    std::vector<LiveEvent *> racy;
    racy.reserve(live_.size());
    for (const auto &[ord, e] : live_) {
        if (e->racy)
            racy.push_back(e.get());
    }
    std::sort(racy.begin(), racy.end(),
              [](const LiveEvent *a, const LiveEvent *b) {
                  return a->ordinal < b->ordinal;
              });
    std::unordered_map<std::uint64_t, std::uint32_t> nodeOf;
    nodeOf.reserve(racy.size());
    for (std::uint32_t i = 0; i < racy.size(); ++i)
        nodeOf.emplace(racy[i]->ordinal, i);

    // Canonical race list: endpoints by final event id, addresses
    // sorted/deduped, ordered by (a, b) — findRaces()'s contract.
    struct FinalRace
    {
        EventId a = kNoEvent;
        EventId b = kNoEvent;
        const LiveEvent *ea = nullptr;
        const LiveEvent *eb = nullptr;
        std::vector<Addr> addrs;
        bool isData = true;
    };
    std::vector<FinalRace> finals;
    finals.reserve(races_.size());
    for (StreamRace &sr : races_) {
        const LiveEvent *x = live_.at(sr.ordA).get();
        const LiveEvent *y = live_.at(sr.ordB).get();
        FinalRace fr;
        if (x->finalId <= y->finalId) {
            fr.ea = x;
            fr.eb = y;
        } else {
            fr.ea = y;
            fr.eb = x;
        }
        fr.a = fr.ea->finalId;
        fr.b = fr.eb->finalId;
        fr.addrs = std::move(sr.addrs);
        std::sort(fr.addrs.begin(), fr.addrs.end());
        fr.addrs.erase(
            std::unique(fr.addrs.begin(), fr.addrs.end()),
            fr.addrs.end());
        fr.isData = sr.isData;
        finals.push_back(std::move(fr));
    }
    std::sort(finals.begin(), finals.end(),
              [](const FinalRace &x, const FinalRace &y) {
                  return x.a != y.a ? x.a < y.a : x.b < y.b;
              });

    // Summary graph over the racy events only.  The clock snapshots
    // answer transitive hb1 exactly, so any G' path between racy
    // nodes maps to a summary path (its hb1 stretches compress to
    // single edges; race edges connect racy nodes by definition):
    // SCCs and reachability of G' restricted to racy nodes carry
    // over, which is all partitioning reads.
    //
    // A transitive reduction of the hb edges keeps the graph linear:
    // u's EARLIEST hb1-successor among each processor's racy nodes
    // reaches every later one through that processor's po chain
    // (whose edges are in the graph too), so per-node out-degree is
    // O(procs) instead of O(racy) — all-pairs edges made partitioning
    // quadratic in racy events on long traces.
    AdjList g(racy.size());
    std::vector<std::vector<std::uint32_t>> byProcNodes(
        procs_.size());
    for (std::uint32_t i = 0; i < racy.size(); ++i)
        byProcNodes[racy[i]->proc].push_back(i);
    for (std::uint32_t i = 0; i < racy.size(); ++i) {
        const LiveEvent *u = racy[i];
        for (ProcId p = 0; p < byProcNodes.size(); ++p) {
            const auto &nodes = byProcNodes[p];
            // Processor p's clock component for u->proc is
            // non-decreasing along p's events, so the first node
            // hb1-after u is found by binary search.
            auto it = std::lower_bound(
                nodes.begin(), nodes.end(), u->epoch,
                [&](std::uint32_t j, std::uint64_t epoch) {
                    return racy[j]->clock.get(u->proc) < epoch;
                });
            if (p == u->proc) {
                // The search finds u itself; its chain successor is
                // one past it.
                while (it != nodes.end() && *it <= i)
                    ++it;
            }
            if (it != nodes.end())
                g[i].push_back(*it);
        }
    }
    for (const FinalRace &fr : finals) {
        const std::uint32_t na = nodeOf.at(fr.ea->ordinal);
        const std::uint32_t nb = nodeOf.at(fr.eb->ordinal);
        g[na].push_back(nb);
        g[nb].push_back(na);
    }
    const SccResult scc = stronglyConnectedComponents(g);

    // Partitions grouped by component, labelled by their smallest
    // racy event id, ordered by label — partitionRaces()'s contract.
    struct Part
    {
        std::uint32_t comp = 0;
        std::uint32_t label = kNoEvent;
        std::vector<RaceId> races;
        bool hasDataRace = false;
        bool first = false;
    };
    std::map<std::uint32_t, std::vector<RaceId>> byComp;
    for (RaceId r = 0; r < finals.size(); ++r) {
        const std::uint32_t ca =
            scc.componentOf[nodeOf.at(finals[r].ea->ordinal)];
        wmr_assert(ca ==
                   scc.componentOf[nodeOf.at(finals[r].eb->ordinal)]);
        byComp[ca].push_back(r);
    }
    std::vector<Part> parts;
    parts.reserve(byComp.size());
    for (const auto &[comp, rs] : byComp) {
        Part part;
        part.comp = comp;
        part.races = rs;
        for (const RaceId r : rs) {
            part.hasDataRace |= finals[r].isData;
            part.label = std::min(part.label, finals[r].a);
        }
        parts.push_back(std::move(part));
    }
    std::sort(parts.begin(), parts.end(),
              [](const Part &x, const Part &y) {
                  return x.label < y.label;
              });

    // First-partition rule: a data-race partition is first iff no
    // OTHER data-race partition reaches its component.  One pass in
    // topological order (components are numbered in REVERSE
    // topological order, so descending ids) propagates the set of
    // data-race partitions reaching each component, capped at two
    // distinct labels — enough to answer "does any label other than
    // mine reach me" without an O(components²) reachability matrix.
    const std::uint32_t nc = scc.numComponents;
    constexpr std::uint32_t kNoLabel =
        std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> ownLabel(nc, kNoLabel);
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (parts[i].hasDataRace)
            ownLabel[parts[i].comp] = static_cast<std::uint32_t>(i);
    }
    std::vector<std::array<std::uint32_t, 2>> reachedBy(
        nc, {kNoLabel, kNoLabel});
    const auto mergeLabel = [&](std::array<std::uint32_t, 2> &dst,
                                std::uint32_t label) {
        if (label == kNoLabel || dst[0] == label || dst[1] == label)
            return;
        if (dst[0] == kNoLabel)
            dst[0] = label;
        else if (dst[1] == kNoLabel)
            dst[1] = label;
    };
    for (std::uint32_t c = nc; c-- > 0;) {
        std::array<std::uint32_t, 2> out = reachedBy[c];
        mergeLabel(out, ownLabel[c]);
        for (const std::uint32_t s : scc.condensation[c]) {
            mergeLabel(reachedBy[s], out[0]);
            mergeLabel(reachedBy[s], out[1]);
        }
    }
    std::vector<std::uint32_t> firstParts;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        Part &pi = parts[i];
        if (!pi.hasDataRace)
            continue;
        const auto self = static_cast<std::uint32_t>(i);
        const auto &rb = reachedBy[pi.comp];
        pi.first = (rb[0] == kNoLabel || rb[0] == self) &&
                   (rb[1] == kNoLabel || rb[1] == self);
        if (pi.first)
            firstParts.push_back(self);
    }

    // Conservative SCP classification (the ops==nullptr path).
    const bool wholeSc = firstStale == kNoOp;
    const std::uint64_t scpEndOp = wholeSc ? totalOps : firstStale;

    ReportModel m;
    m.numEvents = static_cast<std::size_t>(eventsTotal_);
    m.numSyncEvents = static_cast<std::uint32_t>(syncEvents_);
    m.totalOps = totalOps;
    m.wholeExecutionSc = wholeSc;
    m.scpEndOp = scpEndOp;

    const auto info = [](const LiveEvent *e) {
        ReportEventInfo out;
        out.id = e->finalId;
        out.proc = e->proc;
        out.isSync = e->kind == EventKind::Sync;
        out.syncOp = e->syncOp;
        out.opCount = e->opCount;
        out.reads = e->reads4;
        out.writes = e->writes4;
        return out;
    };
    std::size_t dataRaces = 0;
    for (const FinalRace &fr : finals) {
        ReportRaceModel rm;
        rm.a = info(fr.ea);
        rm.b = info(fr.eb);
        rm.addrs = fr.addrs;
        rm.isDataRace = fr.isData;
        const Membership ma =
            membershipOf(fr.ea->firstOp, fr.ea->lastOp, scpEndOp);
        const Membership mb =
            membershipOf(fr.eb->firstOp, fr.eb->lastOp, scpEndOp);
        if (ma != Membership::Outside && mb != Membership::Outside) {
            if (ma == Membership::Full && mb == Membership::Full) {
                rm.inScp = true;
                rm.maybeInScp = true;
            } else {
                rm.maybeInScp = true;
            }
        }
        dataRaces += fr.isData;
        m.races.push_back(std::move(rm));
    }
    m.numDataRaces = dataRaces;
    m.anyDataRace = dataRaces > 0;

    std::uint64_t reportedRaces = 0;
    for (const Part &part : parts) {
        ReportPartitionModel pm;
        pm.label = part.label;
        pm.races = part.races;
        pm.first = part.first;
        if (part.first)
            reportedRaces += part.races.size();
        m.partitions.push_back(std::move(pm));
    }
    m.firstPartitions = firstParts;

    res.ok = true;
    res.exact = exact_;
    res.events = eventsTotal_;
    res.syncEvents = syncEvents_;
    res.ops = totalOps;
    res.races = finals.size();
    res.dataRaces = dataRaces;
    res.partitions = parts.size();
    res.firstPartitions = firstParts.size();
    res.reportedRaces = reportedRaces;
    res.anyDataRace = m.anyDataRace;
    res.wholeExecutionSc = wholeSc;
    res.segments = segments_;
    res.peakResident = peakResident_;
    res.windowsRetired = windowsRetired_;
    res.salvage = scanSalvage;
    res.salvage.unresolvedPairings = unresolvedPairings_;
    res.report = std::move(m);
    return res;
}

StreamResult
streamAnalyzeFollow(const std::string &path, const StreamOptions &opts,
                    const std::function<bool()> &producerAlive,
                    unsigned pollMs)
{
    const auto alive = [&]() {
        return producerAlive && producerAlive();
    };
    const auto nap = [&]() {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(pollMs ? pollMs : 1));
    };

    obs::Span span("stream.analyze");
    obs::counter("stream.runs").inc();

    SegmentTailReader tail;
    while (!tail.open(path)) {
        // The recorder may not have created the file yet.
        if (!alive()) {
            if (tail.open(path))
                break;
            StreamResult res;
            res.error = tail.error();
            return res;
        }
        nap();
    }

    StreamAnalyzer an(opts);
    std::vector<SegTailSegment> segs;
    for (;;) {
        // Sample liveness BEFORE polling: anything written before
        // the producer died is visible to this or a later poll.
        const bool wasAlive = alive();
        segs.clear();
        const TailPollStatus st = tail.poll(segs);
        for (const SegTailSegment &seg : segs)
            an.addSegment(seg);
        if (st == TailPollStatus::Fin ||
            st == TailPollStatus::Damaged)
            break;
        if (st == TailPollStatus::Waiting) {
            if (!wasAlive)
                break;
            nap();
        }
    }

    if (!tail.finalize(opts.strict)) {
        StreamResult res;
        res.error = tail.error();
        res.salvage = tail.salvage();
        return res;
    }
    return an.finish(tail.finSeen(), tail.fin(), tail.salvage());
}

StreamResult
streamAnalyzeFile(const std::string &path, const StreamOptions &opts)
{
    return streamAnalyzeFollow(path, opts, nullptr, 0);
}

} // namespace wmr
