#include "pipeline/metrics.hh"

#include "common/string_util.hh"

namespace wmr {

std::string
formatMetrics(const BatchMetrics &m)
{
    std::string out;
    out += strformat(
        "batch metrics (%u job(s), %u analysis thread(s) each):\n",
        m.jobs, m.analysisThreads);
    out += strformat(
        "  traces: %zu corpus, %zu analyzed, %zu failed, %zu "
        "skipped\n",
        m.corpusTraces, m.analyzed, m.failed, m.skipped);
    if (m.resumed > 0 || m.salvaged > 0)
        out += strformat(
            "  resumed from checkpoint: %zu   salvaged: %zu\n",
            m.resumed, m.salvaged);
    out += strformat("  wall time: %.3f s  (%.1f traces/s)\n",
                     m.wallSeconds, m.tracesPerSecond());
    out += strformat("  bytes read: %s\n",
                     withCommas(m.bytesRead).c_str());
    out += strformat(
        "  stage latency (worker-seconds): read %.3f, parse %.3f, "
        "analyze %.3f\n",
        m.stageTotal.read, m.stageTotal.parse, m.stageTotal.analyze);
    out += strformat(
        "  analyze breakdown: graph %.3f, reach %.3f, races %.3f, "
        "augment %.3f, partition %.3f, scp %.3f\n",
        m.analysisStages.graphBuild, m.analysisStages.reachability,
        m.analysisStages.raceFind, m.analysisStages.augment,
        m.analysisStages.partition, m.analysisStages.scp);
    out += strformat(
        "  race finding: %llu candidate pair(s), %llu oracle "
        "quer(ies)\n",
        static_cast<unsigned long long>(m.candidatePairs),
        static_cast<unsigned long long>(m.reachQueries));
    out += strformat("  peak queue depth: %zu\n", m.peakQueueDepth);
    return out;
}

std::string
metricsJson(const BatchMetrics &m)
{
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"wmrace-batch-metrics\",\n";
    out += "  \"version\": 2,\n";
    out += strformat("  \"jobs\": %u,\n", m.jobs);
    out += strformat("  \"analysis_threads\": %u,\n",
                     m.analysisThreads);
    out += strformat("  \"corpus_traces\": %zu,\n", m.corpusTraces);
    out += strformat("  \"analyzed\": %zu,\n", m.analyzed);
    out += strformat("  \"failed\": %zu,\n", m.failed);
    out += strformat("  \"skipped\": %zu,\n", m.skipped);
    out += strformat("  \"resumed\": %zu,\n", m.resumed);
    out += strformat("  \"salvaged\": %zu,\n", m.salvaged);
    out += strformat("  \"bytes_read\": %llu,\n",
                     static_cast<unsigned long long>(m.bytesRead));
    out += strformat("  \"wall_seconds\": %.6f,\n", m.wallSeconds);
    out += strformat("  \"traces_per_second\": %.3f,\n",
                     m.tracesPerSecond());
    out += "  \"stage_seconds\": {\n";
    out += strformat("    \"read\": %.6f,\n", m.stageTotal.read);
    out += strformat("    \"parse\": %.6f,\n", m.stageTotal.parse);
    out += strformat("    \"analyze\": %.6f\n", m.stageTotal.analyze);
    out += "  },\n";
    out += "  \"analysis_stage_seconds\": {\n";
    out += strformat("    \"graph_build\": %.6f,\n",
                     m.analysisStages.graphBuild);
    out += strformat("    \"reachability\": %.6f,\n",
                     m.analysisStages.reachability);
    out += strformat("    \"race_find\": %.6f,\n",
                     m.analysisStages.raceFind);
    out += strformat("    \"augment\": %.6f,\n",
                     m.analysisStages.augment);
    out += strformat("    \"partition\": %.6f,\n",
                     m.analysisStages.partition);
    out += strformat("    \"scp\": %.6f\n", m.analysisStages.scp);
    out += "  },\n";
    out += strformat(
        "  \"candidate_pairs\": %llu,\n",
        static_cast<unsigned long long>(m.candidatePairs));
    out += strformat(
        "  \"reach_queries\": %llu,\n",
        static_cast<unsigned long long>(m.reachQueries));
    out += strformat("  \"peak_queue_depth\": %zu\n",
                     m.peakQueueDepth);
    out += "}\n";
    return out;
}

} // namespace wmr
