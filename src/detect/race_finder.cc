#include "detect/race_finder.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace wmr {

namespace {

/** Per-address accessor lists. */
struct AddrAccess
{
    std::vector<EventId> writers;
    std::vector<EventId> readers; ///< events reading but not writing
};

std::uint64_t
pairKey(EventId a, EventId b)
{
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

} // namespace

std::vector<DataRace>
findRaces(const ExecutionTrace &trace, const ReachabilityIndex &reach,
          const RaceFinderOptions &opts)
{
    const auto &events = trace.events();

    // Index events by accessed address.
    std::vector<AddrAccess> byAddr(trace.memWords());
    const auto cover = [&](Addr a) -> AddrAccess & {
        if (a >= byAddr.size())
            byAddr.resize(a + 1);
        return byAddr[a];
    };

    for (const auto &ev : events) {
        if (ev.kind == EventKind::Sync) {
            auto &acc = cover(ev.syncOp.addr);
            if (ev.syncOp.kind == OpKind::Write)
                acc.writers.push_back(ev.id);
            else
                acc.readers.push_back(ev.id);
        } else {
            ev.writeSet.forEach([&](std::size_t a) {
                cover(static_cast<Addr>(a)).writers.push_back(ev.id);
            });
            ev.readSet.forEach([&](std::size_t a) {
                // An event both reading and writing a word already
                // sits in writers; listing it in readers too would
                // only self-pair (skipped below), so keep it once.
                if (!ev.writeSet.test(a)) {
                    cover(static_cast<Addr>(a))
                        .readers.push_back(ev.id);
                }
            });
        }
    }

    // Candidate pairs per address; dedupe across addresses and
    // collect the conflicting locations of each surviving pair.
    std::unordered_map<std::uint64_t, RaceId> pairIndex;
    std::vector<DataRace> races;

    const auto consider = [&](EventId x, EventId y, Addr addr) {
        if (x == y)
            return;
        const Event &ex = events[x];
        const Event &ey = events[y];
        if (ex.proc == ey.proc)
            return; // po-ordered for sure
        const bool isData = ex.kind == EventKind::Computation ||
                            ey.kind == EventKind::Computation;
        if (!isData && !opts.includeSyncSyncRaces)
            return;
        const EventId lo = std::min(x, y);
        const EventId hi = std::max(x, y);
        const std::uint64_t key = pairKey(lo, hi);
        const auto it = pairIndex.find(key);
        if (it != pairIndex.end()) {
            races[it->second].addrs.push_back(addr);
            return;
        }
        if (reach.ordered(lo, hi))
            return;
        DataRace r;
        r.a = lo;
        r.b = hi;
        r.addrs.push_back(addr);
        r.isDataRace = isData;
        pairIndex.emplace(key, static_cast<RaceId>(races.size()));
        races.push_back(std::move(r));
    };

    for (Addr a = 0; a < byAddr.size(); ++a) {
        const auto &acc = byAddr[a];
        for (std::size_t i = 0; i < acc.writers.size(); ++i) {
            for (std::size_t j = i + 1; j < acc.writers.size(); ++j)
                consider(acc.writers[i], acc.writers[j], a);
            for (const EventId r : acc.readers)
                consider(acc.writers[i], r, a);
        }
    }

    // The pairIndex shortcut above records ordered pairs too (to
    // avoid re-checking), so filter: only pairs that were actually
    // stored as races exist in `races`.  Addresses were appended only
    // to stored races; nothing else to do.

    // Deterministic output: sort by (a, b).
    std::sort(races.begin(), races.end(),
              [](const DataRace &x, const DataRace &y) {
                  return x.a != y.a ? x.a < y.a : x.b < y.b;
              });
    for (auto &r : races) {
        std::sort(r.addrs.begin(), r.addrs.end());
        r.addrs.erase(std::unique(r.addrs.begin(), r.addrs.end()),
                      r.addrs.end());
    }
    return races;
}

} // namespace wmr
