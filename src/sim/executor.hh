/**
 * @file
 * The multiprocessor executor: runs an IR program against a memory
 * model under a scheduler and records every memory operation.
 *
 * Instructions issue one at a time (a legal SC interleaving), so all
 * weak behavior comes from the memory model's store buffering, never
 * from the executor itself.  The recorded MemOp stream, with observed
 * read-from edges and stale-read annotations, is the raw material for
 * the tracer (trace/), the detectors (detect/, onthefly/) and the SCP
 * analysis.
 */

#ifndef WMR_SIM_EXECUTOR_HH
#define WMR_SIM_EXECUTOR_HH

#include <array>
#include <memory>
#include <vector>

#include "prog/program.hh"
#include "sim/model.hh"
#include "sim/scheduler.hh"

namespace wmr {

/** Observer of the live operation stream (on-the-fly detectors). */
class OpSink
{
  public:
    virtual ~OpSink() = default;

    /** Called for every memory operation, in issue order. */
    virtual void onOp(const MemOp &op) = 0;

    /** Called when processor @p proc halts. */
    virtual void onHalt(ProcId proc) { (void)proc; }
};

/**
 * A scripted buffer drain: after pick number @p afterPick (an index
 * into the scheduling sequence), the oldest pending store of
 * @p proc to @p addr becomes globally visible.  Together with a
 * ScriptedScheduler this pins down one exact weak interleaving —
 * how the figure reproductions stage the paper's executions.
 */
struct DrainDirective
{
    std::uint64_t afterPick = 0;
    ProcId proc = 0;
    Addr addr = 0;
};

/** Knobs of one simulated execution. */
struct ExecOptions
{
    ModelKind model = ModelKind::WO;

    /** Hardware realization of the model (see model.hh). */
    Realization realization = Realization::StoreBuffer;

    /** Seed for the scheduler and the drain policy. */
    std::uint64_t seed = 1;

    /**
     * Probability a drainable buffered store stays buffered each
     * tick; 1.0 = drain only when a sync forces it (adversarial).
     */
    double drainLaziness = 0.5;

    CostParams cost;

    /** Abort threshold against livelocked spin loops. */
    std::uint64_t maxSteps = 2'000'000;

    /** Optional external scheduler; default is RandomScheduler. */
    Scheduler *scheduler = nullptr;

    /** Optional observer of the live operation stream. */
    OpSink *sink = nullptr;

    /** Scripted drains, sorted or not (executor sorts a copy). */
    std::vector<DrainDirective> drainScript;
};

/** Everything one simulated execution produced. */
struct ExecutionResult
{
    ModelKind model = ModelKind::WO;

    /** All memory operations, in issue order (MemOp::id = index). */
    std::vector<MemOp> ops;

    /** Whether every thread reached Halt before maxSteps. */
    bool completed = false;

    /** Instructions executed. */
    std::uint64_t steps = 0;

    /** Per-processor cycle counts (the cost model's output). */
    std::vector<Tick> procCycles;

    /** Parallel completion time: max over procCycles. */
    Tick totalCycles = 0;

    /** Id of the first stale read, or kNoOp when the whole execution
     *  is witnessed SC by the issue order. */
    OpId firstStaleRead = kNoOp;

    /** Total stale reads observed. */
    std::uint64_t staleReads = 0;

    /** Final shared-memory image (after draining all buffers). */
    std::vector<Value> finalMemory;

    /** Final architectural register state per processor. */
    std::vector<std::array<Value, kNumRegs>> finalRegs;

    /**
     * Which processor executed each instruction step, in order.
     * Feeding this to a ScriptedScheduler replays the interleaving;
     * mc/scp_witness.hh uses the prefix up to the first stale read to
     * construct the sequentially consistent execution Eseq whose
     * prefix the SCP is.
     */
    std::vector<ProcId> stepOrder;

    /**
     * Witnessed coherence order: ids of every program write in the
     * order the model made it globally visible (per-address
     * restriction = the co relation).  Input to the dynamic
     * robustness check (detect/robustness.hh).
     */
    std::vector<OpId> visibilityOrder;

    /** @return the final value of @p addr (0 if out of range). */
    Value
    memAt(Addr addr) const
    {
        return addr < finalMemory.size() ? finalMemory[addr] : 0;
    }
};

/** Runs programs; stateless between run() calls. */
class Executor
{
  public:
    /** Execute @p prog with @p opts and return the full record. */
    ExecutionResult run(const Program &prog, const ExecOptions &opts);
};

/** One-shot convenience wrapper around Executor::run. */
ExecutionResult runProgram(const Program &prog,
                           const ExecOptions &opts = {});

} // namespace wmr

#endif // WMR_SIM_EXECUTOR_HH
