/**
 * @file
 * wmrace — the command-line driver.
 *
 *   wmrace run <prog.wm> [options]     simulate + detect + report
 *   wmrace check <trace.bin> [options] post-mortem analysis of a trace
 *   wmrace batch <dir|manifest> [opts] analyze a whole trace corpus
 *   wmrace record [opts] <bin> [args]  run an annotated program,
 *                                      record + analyze its trace
 *   wmrace gen-trace <out> [options]   write a deterministic
 *                                      synthetic trace file
 *   wmrace explore <prog.wm> [options] exhaustive SC model checking
 *   wmrace disasm <prog.wm>            print the assembled program
 *   wmrace static <prog.wm>            compile-time lockset analysis
 *   wmrace models                      list memory models/realizations
 *
 * Options of `run`:
 *   --model SC|WO|RCsc|DRF0|DRF1   memory model      (default WO)
 *   --realization buffer|invalidate hardware flavor  (default buffer)
 *   --seed N                       scheduler/drain seed (default 1)
 *   --laziness X                   drain laziness 0..1  (default 0.5)
 *   --trace FILE                   write the event trace file
 *   --dot FILE                     write the G' graph as DOT
 *   --events                       include per-event detail in report
 *   --stats                        print execution statistics
 *   --timeline                     print the per-processor timeline
 *   --onthefly                     also run the on-the-fly detector
 *
 * Options of `check`: --dot FILE, --events, --salvage, --jobs N,
 *   --stats.
 * Options of `explore`: --max-execs N (default 100000).
 *
 * Options of `batch` (see docs/BATCH.md):
 *   --jobs N       total thread budget, N >= 1 (default: hardware
 *                  concurrency); anything else is rejected (exit 2).
 *                  When the corpus has fewer traces than N, the
 *                  leftover budget parallelizes INSIDE each analysis
 *   --json FILE    write the aggregated JSON report
 *   --metrics FILE write run metrics as JSON (timing, queue depth)
 *   --fail-fast    stop dispatching after the first failed trace
 *   --summary      omit the per-trace lines of the text report
 *   --salvage      analyze the recovered prefix of damaged
 *                  segmented traces instead of failing them
 *   --checkpoint FILE  append-only resume journal: a killed batch
 *                  re-run with the same file skips completed traces
 *   --quarantine FILE  write failed trace paths as a corpus
 *                  manifest (re-feedable to `wmrace batch`)
 *
 * Options of `record` (see docs/RUNTIME.md; they must precede the
 * child binary — everything after it belongs to the child):
 *   --out FILE     trace file (default: <binary-basename>.trace)
 *   --no-check     just record; skip the post-mortem analysis
 *   --timeout SEC  kill the child after SEC seconds (classified as
 *                  timed-out; the partial trace is salvaged)
 *   --retries N    re-run an abnormally terminated child up to N
 *                  extra times with backoff before salvaging
 * The child is launched with WMR_RT_TRACE set, so a program
 * annotated with rt/annotate.hh records itself; crash-resilient
 * segmented spilling is on by default (WMR_RT_SPILL to tune), so a
 * crashed or killed child still leaves a salvageable trace, which
 * `record` analyzes instead of fataling.
 *
 * Options of `check`: --dot FILE, --events, --salvage (recover the
 * longest valid prefix of a damaged segmented trace), --jobs N
 * (analysis threads; the report is byte-identical at every N), and
 * --stats (per-stage timing to stderr).
 *
 * Options of `gen-trace` (see SyntheticTraceOptions): --procs N,
 *   --events N (per processor), --words N, --sync-words N, --seed N,
 *   --sync-fraction X, --hot-fraction X, --segmented (WMRSEG01
 *   container), --truncate N (keep only the first N bytes — a
 *   damaged-file fixture for --salvage testing).
 *
 * `check`, `batch` and `record` also take `--trace-out FILE`: write
 * a Chrome trace_event JSON timeline of the run (spans + counters;
 * see docs/OBSERVABILITY.md) — purely additive, reports stay
 * byte-identical.  The WMR_OBS environment variable provides the
 * same without CLI support (WMR_OBS=1 | chrome:FILE | jsonl:FILE).
 */

#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "detect/analysis.hh"
#include "detect/dot_export.hh"
#include "detect/report.hh"
#include "obs/export.hh"
#include "obs/obs.hh"
#include "sim/exec_stats.hh"
#include "mc/explorer.hh"
#include "onthefly/first_race_filter.hh"
#include "pipeline/aggregate_report.hh"
#include "pipeline/batch_runner.hh"
#include "pipeline/checkpoint.hh"
#include "prog/assembler.hh"
#include "staticdet/static_analyzer.hh"
#include "trace/segmented_io.hh"
#include "trace/timeline.hh"
#include "trace/trace_io.hh"
#include "workload/synthetic_trace.hh"

namespace {

using namespace wmr;

/** Minimal flag parser: --key value / --key. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                const std::string key = a.substr(2);
                if (i + 1 < argc && !looksLikeFlag(argv[i + 1])) {
                    kv_[key] = argv[++i];
                } else {
                    kv_[key] = "";
                }
            } else {
                positional_.push_back(std::move(a));
            }
        }
    }

    bool has(const std::string &key) const { return kv_.count(key); }

    std::string
    get(const std::string &key, const std::string &dflt = "") const
    {
        const auto it = kv_.find(key);
        return it == kv_.end() ? dflt : it->second;
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    /**
     * @return whether @p s is a flag rather than a value.  Values
     * beginning with '-' are legal when they look numeric ("-5",
     * "-0.5", "-.5"), so `--seed -5` parses as seed = -5 instead of
     * eating "-5" as an (unknown) flag.  A bare "-" is a value too
     * (conventional stdin placeholder).
     */
    static bool
    looksLikeFlag(const char *s)
    {
        if (s[0] != '-' || s[1] == '\0')
            return false;
        if (std::isdigit(static_cast<unsigned char>(s[1])) ||
            s[1] == '.') {
            return false; // negative number
        }
        return true;
    }

    std::map<std::string, std::string> kv_;
    std::vector<std::string> positional_;
};

/**
 * Parse a strict `--jobs` value into @p jobs (untouched when the
 * flag is absent).  A mistyped --jobs must not silently become
 * "hardware concurrency" (0) or a huge unsigned, so anything but an
 * integer in [1, 4096] prints an error and returns false.
 */
bool
parseJobs(const Args &args, const char *cmd, unsigned &jobs)
{
    if (!args.has("jobs"))
        return true;
    const std::string v = args.get("jobs");
    char *end = nullptr;
    errno = 0;
    const long long n =
        v.empty() ? -1 : std::strtoll(v.c_str(), &end, 10);
    if (v.empty() || *end != '\0' || errno == ERANGE || n < 1 ||
        n > 4096) {
        std::fprintf(stderr,
                     "%s: invalid --jobs '%s': expected an integer "
                     "between 1 and 4096\n",
                     cmd, v.c_str());
        return false;
    }
    jobs = static_cast<unsigned>(n);
    return true;
}

/**
 * `--trace-out FILE`: turn span/counter collection on for the whole
 * command and write a Chrome trace_event JSON file (loadable in
 * perfetto / chrome://tracing) when the command finishes.  Purely
 * additive: stdout and every report stay byte-identical.
 */
class TraceOut
{
  public:
    explicit TraceOut(const Args &args) : path_(args.get("trace-out"))
    {
        if (args.has("trace-out") && path_.empty())
            fatal("--trace-out needs a file path");
        if (!path_.empty())
            obs::setEnabled(true);
    }

    explicit TraceOut(std::string path) : path_(std::move(path))
    {
        if (!path_.empty())
            obs::setEnabled(true);
    }

    ~TraceOut()
    {
        if (path_.empty())
            return;
        if (!obs::writeChromeTrace(path_)) {
            std::fprintf(stderr,
                         "cannot write Chrome trace to '%s'\n",
                         path_.c_str());
        } else {
            std::fprintf(stderr, "wrote Chrome trace to %s  (open "
                                 "in ui.perfetto.dev)\n",
                         path_.c_str());
        }
    }

  private:
    std::string path_;
};

ModelKind
parseModel(const std::string &name)
{
    for (const auto kind : kAllModels) {
        if (name == modelName(kind))
            return kind;
    }
    fatal("unknown memory model '%s' (try SC, WO, RCsc, DRF0, DRF1)",
          name.c_str());
}

Realization
parseRealization(const std::string &name)
{
    if (name == "buffer" || name == "store-buffer")
        return Realization::StoreBuffer;
    if (name == "invalidate")
        return Realization::Invalidate;
    fatal("unknown realization '%s' (try buffer, invalidate)",
          name.c_str());
}

int
cmdRun(const Args &args)
{
    if (args.positional().empty())
        fatal("run: missing program file");
    const Program prog = assembleFile(args.positional()[0]);

    ExecOptions opts;
    opts.model = parseModel(args.get("model", "WO"));
    opts.realization =
        parseRealization(args.get("realization", "buffer"));
    opts.seed = std::strtoull(args.get("seed", "1").c_str(), nullptr,
                              10);
    opts.drainLaziness =
        std::strtod(args.get("laziness", "0.5").c_str(), nullptr);

    FirstRaceFilter otf(prog.numProcs(), prog.memWords());
    if (args.has("onthefly"))
        opts.sink = &otf;

    const ExecutionResult res = runProgram(prog, opts);
    std::printf("model %s (%s), seed %llu: %llu instructions, %zu "
                "memory ops, %llu cycles%s\n",
                std::string(modelName(opts.model)).c_str(),
                std::string(realizationName(opts.realization))
                    .c_str(),
                static_cast<unsigned long long>(opts.seed),
                static_cast<unsigned long long>(res.steps),
                res.ops.size(),
                static_cast<unsigned long long>(res.totalCycles),
                res.completed ? "" : "  [TRUNCATED]");

    if (args.has("trace")) {
        const auto trace = buildTrace(res, {.keepMemberOps = true});
        const auto bytes =
            writeTraceFile(trace, args.get("trace"));
        std::printf("wrote %zu events (%zu bytes) to %s\n",
                    trace.events().size(), bytes,
                    args.get("trace").c_str());
    }

    if (args.has("stats")) {
        std::printf("%s",
                    formatStats(summarizeExecution(res), &prog)
                        .c_str());
    }

    if (args.has("timeline")) {
        const auto trace = buildTrace(res, {.keepMemberOps = true});
        std::printf("%s",
                    renderTimeline(trace, &prog, &res).c_str());
    }

    const DetectionResult det = analyzeExecution(res);
    ReportOptions ropts;
    ropts.showEvents = args.has("events");
    std::printf("%s", formatReport(det, &prog, ropts).c_str());

    if (args.has("onthefly")) {
        std::printf("\non-the-fly: %zu race report(s), %zu distinct, "
                    "%zu classified first\n",
                    otf.detector().races().size(),
                    otf.detector().distinctRaces().size(),
                    otf.firstRaces().size());
    }

    if (args.has("dot")) {
        writeDotFile(det, args.get("dot"), &prog);
        std::printf("wrote DOT graph to %s  (render: dot -Tsvg %s)\n",
                    args.get("dot").c_str(), args.get("dot").c_str());
    }
    return det.anyDataRace() ? 1 : 0;
}

/** @return whether the file at @p path starts with the segmented
 *  trace magic (false on unreadable files too). */
bool
fileLooksSegmented(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::uint8_t head[8] = {};
    if (!in.read(reinterpret_cast<char *>(head), sizeof(head)))
        return false;
    return looksSegmented(head, sizeof(head));
}

/** A trace loaded for analysis plus its provenance. */
struct LoadedTrace
{
    bool ok = false;
    ExecutionTrace trace;
    std::string error;
    bool segmented = false;
    SalvageInfo salvage;
};

/**
 * Load @p path whichever container it uses.  @p allowSalvage makes
 * a damaged/incomplete segmented file recover its longest valid
 * prefix instead of failing.
 */
LoadedTrace
loadRecordedTrace(const std::string &path, bool allowSalvage)
{
    LoadedTrace out;
    if (fileLooksSegmented(path)) {
        out.segmented = true;
        auto res = allowSalvage ? trySalvageTraceFile(path)
                                : tryReadSegmentedTraceFile(path);
        out.ok = res.ok();
        out.trace = std::move(res.trace);
        out.error = std::move(res.error);
        out.salvage = std::move(res.salvage);
        return out;
    }
    auto res = tryReadTraceFile(path);
    out.ok = res.ok();
    out.trace = std::move(res.trace);
    out.error = std::move(res.error);
    return out;
}

/**
 * The report header lines stating what the analyzed trace actually
 * is: salvage provenance and recorder-side data loss, so a partial
 * or Drop-mode trace can never masquerade as a complete one.
 */
void
printTraceProvenance(const LoadedTrace &lt)
{
    if (!lt.segmented)
        return;
    if (lt.salvage.salvaged) {
        std::printf("SALVAGED trace: %s\n",
                    lt.salvage.summary().c_str());
        if (lt.salvage.unresolvedPairings > 0) {
            std::printf("  %llu release->acquire pairing(s) lost "
                        "with the dropped tail\n",
                        static_cast<unsigned long long>(
                            lt.salvage.unresolvedPairings));
        }
    }
    if (lt.salvage.droppedDataRecords > 0) {
        std::printf("RECORDER LOSS: %llu data record(s) dropped by "
                    "the ring-overflow Drop policy; computation "
                    "events undercount accordingly\n",
                    static_cast<unsigned long long>(
                        lt.salvage.droppedDataRecords));
    }
}

int
cmdCheck(const Args &args)
{
    if (args.positional().empty())
        fatal("check: missing trace file");
    const TraceOut traceOut(args);
    const LoadedTrace lt = loadRecordedTrace(args.positional()[0],
                                             args.has("salvage"));
    if (!lt.ok)
        fatal("%s%s", lt.error.c_str(),
              lt.segmented && !args.has("salvage")
                  ? "  (re-run with --salvage to recover the valid "
                    "prefix)"
                  : "");
    printTraceProvenance(lt);
    AnalysisOptions aopts;
    if (!parseJobs(args, "check", aopts.threads))
        return 2;
    const DetectionResult det = analyzeTrace(lt.trace, aopts);
    ReportOptions ropts;
    ropts.showEvents = args.has("events");
    std::printf("%s", formatReport(det, nullptr, ropts).c_str());
    if (args.has("dot")) {
        writeDotFile(det, args.get("dot"));
        std::printf("wrote DOT graph to %s\n",
                    args.get("dot").c_str());
    }
    // Timing is nondeterministic by nature: --stats goes to stderr
    // so stdout stays byte-identical at every --jobs value.
    if (args.has("stats"))
        std::fprintf(stderr, "%s",
                     formatAnalysisStats(det.stats()).c_str());
    return det.anyDataRace() ? 1 : 0;
}

int
cmdBatch(const Args &args)
{
    if (args.positional().empty())
        fatal("batch: missing corpus directory or manifest file");
    const TraceOut traceOut(args);
    const CorpusScan corpus = scanCorpus(args.positional()[0]);
    if (!corpus.ok())
        fatal("%s", corpus.error.c_str());

    BatchOptions opts;
    if (!parseJobs(args, "batch", opts.jobs))
        return 2;
    opts.failFast = args.has("fail-fast");
    opts.salvage = args.has("salvage");
    if (args.has("checkpoint")) {
        opts.checkpointPath = args.get("checkpoint");
        if (opts.checkpointPath.empty())
            fatal("batch: --checkpoint needs a file path");
    }

    const BatchResult batch = runBatch(corpus, opts);

    BatchReportOptions ropts;
    ropts.showPerTrace = !args.has("summary");
    std::printf("%s", formatBatchReport(batch, ropts).c_str());

    if (args.has("json")) {
        const std::string path = args.get("json");
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot open JSON report file '%s'", path.c_str());
        out << batchReportJson(batch);
        if (!out)
            fatal("short write to JSON report file '%s'",
                  path.c_str());
    }

    if (args.has("quarantine")) {
        const std::string path = args.get("quarantine");
        if (path.empty())
            fatal("batch: --quarantine needs a file path");
        const std::string manifest = quarantineManifest(batch);
        if (manifest.empty()) {
            // Nothing failed: do not leave a stale quarantine
            // around from an earlier, worse run.
            std::remove(path.c_str());
        } else {
            std::ofstream out(path, std::ios::trunc);
            if (!out)
                fatal("cannot open quarantine file '%s'",
                      path.c_str());
            out << manifest;
            if (!out)
                fatal("short write to quarantine file '%s'",
                      path.c_str());
            std::fprintf(stderr,
                         "batch: %zu failed trace(s) listed in "
                         "quarantine manifest %s\n",
                         batch.numFailed(), path.c_str());
        }
    }

    // Metrics are nondeterministic (timing); they go to stderr and
    // the optional --metrics file so stdout and --json stay
    // byte-identical across --jobs values.
    std::fprintf(stderr, "%s",
                 formatMetrics(batch.metrics).c_str());
    if (args.has("metrics")) {
        const std::string path = args.get("metrics");
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            fatal("cannot open metrics file '%s'", path.c_str());
        out << metricsJson(batch.metrics);
    }

    if (opts.failFast && batch.numFailed() > 0)
        return 2;
    return batch.anyDataRace() ? 1 : 0;
}

/** How a supervised recording child ended. */
struct ChildOutcome
{
    enum class Kind : std::uint8_t {
        Clean,    ///< exit 0
        Nonzero,  ///< nonzero exit status
        Signaled, ///< killed by a signal (its own crash)
        TimedOut, ///< exceeded --timeout; we SIGKILLed it
    };
    Kind kind = Kind::Clean;
    int code = 0; ///< exit status or signal number

    bool abnormal() const { return kind != Kind::Clean; }

    std::string
    describe(const std::string &child) const
    {
        char buf[256];
        switch (kind) {
          case Kind::Clean:
            std::snprintf(buf, sizeof(buf),
                          "child '%s' exited cleanly",
                          child.c_str());
            break;
          case Kind::Nonzero:
            std::snprintf(buf, sizeof(buf),
                          "child '%s' exited with status %d",
                          child.c_str(), code);
            break;
          case Kind::Signaled:
            std::snprintf(buf, sizeof(buf),
                          "child '%s' died on signal %d (%s)",
                          child.c_str(), code,
                          ::strsignal(code));
            break;
          case Kind::TimedOut:
            std::snprintf(buf, sizeof(buf),
                          "child '%s' timed out after %ds; killed",
                          child.c_str(), code);
            break;
        }
        return buf;
    }
};

/**
 * Run the recording child once: fork, point its tracer at @p out,
 * exec, and supervise.  With @p timeoutSec > 0 a child still running
 * after the deadline is SIGKILLed and classified TimedOut (its
 * incrementally spilled trace survives for salvage).
 */
ChildOutcome
runRecordChild(const std::string &child, char **childArgv,
               const std::string &out, int timeoutSec)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("record: fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        ::setenv("WMR_RT_TRACE", out.c_str(), 1);
        ::execvp(child.c_str(), childArgv);
        std::fprintf(stderr, "record: cannot exec '%s': %s\n",
                     child.c_str(), std::strerror(errno));
        std::_Exit(127);
    }

    int status = 0;
    bool timedOut = false;
    if (timeoutSec > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::seconds(timeoutSec);
        while (true) {
            const pid_t r = ::waitpid(pid, &status, WNOHANG);
            if (r == pid)
                break;
            if (r < 0 && errno != EINTR)
                fatal("record: waitpid failed: %s",
                      std::strerror(errno));
            if (std::chrono::steady_clock::now() >= deadline) {
                ::kill(pid, SIGKILL);
                if (::waitpid(pid, &status, 0) < 0)
                    fatal("record: waitpid failed: %s",
                          std::strerror(errno));
                timedOut = true;
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    } else if (::waitpid(pid, &status, 0) < 0) {
        fatal("record: waitpid failed: %s", std::strerror(errno));
    }

    ChildOutcome oc;
    if (timedOut) {
        oc.kind = ChildOutcome::Kind::TimedOut;
        oc.code = timeoutSec;
    } else if (WIFSIGNALED(status)) {
        oc.kind = ChildOutcome::Kind::Signaled;
        oc.code = WTERMSIG(status);
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        oc.kind = ChildOutcome::Kind::Nonzero;
        oc.code = WEXITSTATUS(status);
    }
    return oc;
}

/**
 * `wmrace record [opts] <binary> [args...]`: launch an annotated
 * program with WMR_RT_TRACE set so its runtime tracer (src/rt)
 * records an EVENT trace, then analyze the trace with the regular
 * post-mortem pipeline.  An abnormally terminated child is retried
 * (--retries) and its partial trace salvaged — never a fatal().
 */
int
cmdRecord(int argc, char **argv)
{
    std::string out;
    std::string traceOutPath;
    bool check = true;
    int timeoutSec = 0;
    int retries = 0;
    int i = 2;
    for (; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (a == "--trace-out" && i + 1 < argc) {
            traceOutPath = argv[++i];
        } else if (a == "--no-check") {
            check = false;
        } else if (a == "--timeout" && i + 1 < argc) {
            timeoutSec =
                static_cast<int>(std::strtol(argv[++i], nullptr, 10));
            if (timeoutSec < 1)
                fatal("record: invalid --timeout '%s' (want a "
                      "positive number of seconds)", argv[i]);
        } else if (a == "--retries" && i + 1 < argc) {
            retries =
                static_cast<int>(std::strtol(argv[++i], nullptr, 10));
            if (retries < 0 || retries > 100)
                fatal("record: invalid --retries '%s' (want 0..100)",
                      argv[i]);
        } else if (a.rfind("--", 0) == 0) {
            fatal("record: unknown option '%s' (options go before "
                  "the child binary)", a.c_str());
        } else {
            break; // the child binary
        }
    }
    if (i >= argc)
        fatal("record: missing child binary to run");
    const TraceOut traceOut(traceOutPath);
    const std::string child = argv[i];
    if (out.empty()) {
        const auto slash = child.find_last_of('/');
        out = (slash == std::string::npos
                   ? child
                   : child.substr(slash + 1)) +
              ".trace";
    }

    ChildOutcome oc;
    for (int attempt = 0; attempt <= retries; ++attempt) {
        if (attempt > 0) {
            // Exponential backoff for flaky children: 200ms, 400ms,
            // 800ms, ... capped at 5s.
            const auto backoff = std::min<std::int64_t>(
                200ll << (attempt - 1), 5000);
            std::fprintf(stderr,
                         "record: retrying (%d/%d) after %lldms\n",
                         attempt, retries,
                         static_cast<long long>(backoff));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
        }
        oc = runRecordChild(child, argv + i, out, timeoutSec);
        std::printf("record: %s\n", oc.describe(child).c_str());
        if (!oc.abnormal())
            break;
    }

    std::printf("recorded '%s' -> %s\n", child.c_str(), out.c_str());
    if (!check) {
        // --no-check keeps whatever trace the child left, even after
        // an abnormal exit; 0 only when the recording is complete.
        std::ifstream probe(out, std::ios::binary);
        return !probe ? 3 : (oc.abnormal() ? 3 : 0);
    }

    // Strict read after a clean exit; salvage after an abnormal one
    // (the spill file has no FIN segment — that is expected, not an
    // error).
    const LoadedTrace lt = loadRecordedTrace(out, oc.abnormal());
    if (!lt.ok) {
        std::fprintf(stderr,
                     "record: no analyzable trace: %s\n",
                     lt.error.c_str());
        return 3;
    }
    printTraceProvenance(lt);
    const DetectionResult det = analyzeTrace(lt.trace);
    std::printf("%s", formatReport(det, nullptr, {}).c_str());
    return det.anyDataRace() ? 1 : 0;
}

/**
 * `wmrace gen-trace <out> [opts]`: write a deterministic synthetic
 * trace file — the reproducible source of the golden-report corpus
 * (tests/data/golden/regen.sh).  Equal options give byte-identical
 * files.  --segmented emits the WMRSEG01 container; --truncate N
 * keeps only the first N bytes, crafting a damaged file for salvage
 * fixtures.
 */
int
cmdGenTrace(const Args &args)
{
    if (args.positional().empty())
        fatal("gen-trace: missing output file");
    const std::string path = args.positional()[0];

    SyntheticTraceOptions opts;
    opts.procs = static_cast<ProcId>(
        std::strtoul(args.get("procs", "4").c_str(), nullptr, 10));
    opts.eventsPerProc = static_cast<std::uint32_t>(std::strtoul(
        args.get("events", "1000").c_str(), nullptr, 10));
    opts.memWords = static_cast<Addr>(
        std::strtoul(args.get("words", "256").c_str(), nullptr, 10));
    opts.syncWords = static_cast<Addr>(std::strtoul(
        args.get("sync-words", "16").c_str(), nullptr, 10));
    opts.seed = std::strtoull(args.get("seed", "1").c_str(), nullptr,
                              10);
    if (args.has("sync-fraction"))
        opts.syncFraction =
            std::strtod(args.get("sync-fraction").c_str(), nullptr);
    if (args.has("hot-fraction"))
        opts.hotFraction =
            std::strtod(args.get("hot-fraction").c_str(), nullptr);
    if (opts.procs == 0 || opts.eventsPerProc == 0 ||
        opts.memWords == 0)
        fatal("gen-trace: --procs, --events and --words must be "
              "positive");

    const ExecutionTrace trace = makeSyntheticTrace(opts);
    const std::size_t bytes =
        args.has("segmented")
            ? writeSegmentedTraceFile(trace, path)
            : writeTraceFile(trace, path);

    std::size_t kept = bytes;
    if (args.has("truncate")) {
        const auto want = std::strtoull(
            args.get("truncate").c_str(), nullptr, 10);
        if (want == 0 || want >= bytes)
            fatal("gen-trace: --truncate must be in (0, %zu)",
                  bytes);
        if (::truncate(path.c_str(),
                       static_cast<off_t>(want)) != 0)
            fatal("gen-trace: truncate '%s' failed: %s",
                  path.c_str(), std::strerror(errno));
        kept = static_cast<std::size_t>(want);
    }
    std::printf("wrote %zu events (%zu bytes%s) to %s\n",
                trace.events().size(), kept,
                kept != bytes ? ", truncated" : "", path.c_str());
    return 0;
}

int
cmdExplore(const Args &args)
{
    if (args.positional().empty())
        fatal("explore: missing program file");
    const Program prog = assembleFile(args.positional()[0]);
    McLimits limits;
    limits.maxExecutions = std::strtoull(
        args.get("max-execs", "100000").c_str(), nullptr, 10);
    const auto truth = exploreScExecutions(prog, limits);
    std::printf("explored %llu sequentially consistent execution(s)%s"
                "%s\n",
                static_cast<unsigned long long>(truth.executions),
                truth.exhaustive ? " (exhaustive)" : " (bounded)",
                truth.truncated
                    ? (" [" + std::to_string(truth.truncated) +
                       " truncated paths]")
                          .c_str()
                    : "");
    if (truth.anyDataRace) {
        std::printf("program HAS data races on SC; %zu static race "
                    "pair(s):\n",
                    truth.races.size());
        for (const auto &r : truth.races) {
            std::printf("  P%u:pc%u  <->  P%u:pc%u\n", r.x.proc,
                        r.x.pc, r.y.proc, r.y.pc);
        }
        return 1;
    }
    std::printf("no data races in any explored SC execution%s\n",
                truth.exhaustive
                    ? ": the program is data-race-free; all weak "
                      "models guarantee it sequential consistency"
                    : " (bounded exploration: not a proof)");
    return 0;
}

int
cmdStatic(const Args &args)
{
    if (args.positional().empty())
        fatal("static: missing program file");
    const Program prog = assembleFile(args.positional()[0]);
    StaticOptions opts;
    if (args.has("first-data-addr")) {
        opts.firstDataAddr = static_cast<Addr>(std::strtoul(
            args.get("first-data-addr").c_str(), nullptr, 10));
    }
    const auto analysis = analyzeStatically(prog, opts);
    std::printf("%s", formatStaticReport(analysis, &prog).c_str());
    return analysis.clean() ? 0 : 1;
}

int
cmdDisasm(const Args &args)
{
    if (args.positional().empty())
        fatal("disasm: missing program file");
    const Program prog = assembleFile(args.positional()[0]);
    std::printf("%s", prog.disassembleAll().c_str());
    return 0;
}

int
cmdModels()
{
    std::printf("memory models:\n");
    std::printf("  SC    sequential consistency (every op stalls to "
                "completion)\n");
    std::printf("  WO    weak ordering [Dubois/Scheurich/Briggs 86]\n");
    std::printf("  RCsc  release consistency w/ SC sync ops "
                "[Gharachorloo+ 90]\n");
    std::printf("  DRF0  data-race-free-0 [Adve/Hill 90] (pipelined "
                "drains)\n");
    std::printf("  DRF1  data-race-free-1 [Adve/Hill 91] (release/"
                "acquire + pipelined)\n");
    std::printf("realizations:\n");
    std::printf("  buffer       per-processor unordered store "
                "buffers (delayed visibility)\n");
    std::printf("  invalidate   invalidation queues (delayed death "
                "of stale copies)\n");
    return 0;
}

void
usage()
{
    std::printf(
        "usage: wmrace <command> [args]\n"
        "  run <prog.wm>      simulate on a weak model and detect "
        "races\n"
        "  check <trace.bin>  post-mortem analysis of a trace file\n"
        "  batch <dir|manifest>  analyze a whole trace corpus "
        "(multi-threaded)\n"
        "  record <bin> [args]  run an annotated program, record + "
        "analyze its trace\n"
        "  gen-trace <out>    write a deterministic synthetic trace "
        "file\n"
        "  explore <prog.wm>  exhaustive SC model checking\n"
        "  static <prog.wm>   compile-time lockset analysis\n"
        "  disasm <prog.wm>   print the assembled program\n"
        "  models             describe the memory models\n"
        "see the header of tools/wmrace_cli.cc for all options\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "check")
        return cmdCheck(args);
    if (cmd == "batch")
        return cmdBatch(args);
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "gen-trace")
        return cmdGenTrace(args);
    if (cmd == "explore")
        return cmdExplore(args);
    if (cmd == "static")
        return cmdStatic(args);
    if (cmd == "disasm")
        return cmdDisasm(args);
    if (cmd == "models")
        return cmdModels();
    usage();
    return 2;
}
