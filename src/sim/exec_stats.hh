/**
 * @file
 * Post-hoc execution statistics: what an architect wants to know
 * about one simulated run before reading the race report.
 */

#ifndef WMR_SIM_EXEC_STATS_HH
#define WMR_SIM_EXEC_STATS_HH

#include <map>
#include <string>
#include <vector>

#include "sim/executor.hh"

namespace wmr {

/** Aggregated statistics of one execution. */
struct ExecStats
{
    std::uint64_t instructions = 0;
    std::uint64_t memOps = 0;
    std::uint64_t dataReads = 0;
    std::uint64_t dataWrites = 0;
    std::uint64_t syncReads = 0;
    std::uint64_t syncWrites = 0;
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::uint64_t staleReads = 0;
    std::uint64_t divergentOps = 0;
    std::uint64_t taintedWrites = 0;

    /** Operations per processor. */
    std::vector<std::uint64_t> opsPerProc;

    /** Stale reads per address (only addresses with at least one). */
    std::map<Addr, std::uint64_t> staleByAddr;

    /** Sync operations per address ("lock contention" view). */
    std::map<Addr, std::uint64_t> syncByAddr;

    Tick totalCycles = 0;

    /** @return fraction of memory operations that are sync. */
    double
    syncFraction() const
    {
        return memOps == 0 ? 0.0
                           : static_cast<double>(syncReads +
                                                 syncWrites) /
                                 static_cast<double>(memOps);
    }
};

/** Compute the statistics of @p res. */
ExecStats summarizeExecution(const ExecutionResult &res);

/** Render @p stats as a small human-readable block. */
std::string formatStats(const ExecStats &stats,
                        const Program *prog = nullptr);

} // namespace wmr

#endif // WMR_SIM_EXEC_STATS_HH
