/**
 * @file
 * Unit + property tests of the invalidation-protocol realization —
 * the second, structurally different implementation of the weak
 * models — and cross-realization checks of Condition 3.4.
 */

#include <gtest/gtest.h>

#include "detect/analysis.hh"
#include "prog/builder.hh"
#include "sim/invalidate_model.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

TEST(InvalidateModel, FreshMissReadsMemory)
{
    auto m = makeModelOf(Realization::Invalidate, ModelKind::WO, 2, 4,
                         {}, 1.0);
    m->writeData(0, 1, 42, 0);
    // P1 never cached addr 1: the miss fetches the fresh value.
    const auto r = m->readData(1, 1);
    EXPECT_EQ(r.value, 42);
    EXPECT_FALSE(r.stale);
}

TEST(InvalidateModel, CachedCopyGoesStale)
{
    auto m = makeModelOf(Realization::Invalidate, ModelKind::WO, 2, 4,
                         {}, 1.0);
    // P1 caches addr 1 (value 0, initial), then P0 writes it.
    EXPECT_EQ(m->readData(1, 1).value, 0);
    m->writeData(0, 1, 42, 7);
    const auto r = m->readData(1, 1);
    EXPECT_EQ(r.value, 0);  // stale cached copy
    EXPECT_TRUE(r.stale);
    EXPECT_EQ(m->pendingStores(1), 1u); // one pending invalidation
}

TEST(InvalidateModel, AcquireFlushesInbox)
{
    auto m = makeModelOf(Realization::Invalidate, ModelKind::RCsc, 2,
                         4, {}, 1.0);
    m->readData(1, 1);
    m->writeData(0, 1, 42, 7);
    EXPECT_EQ(m->pendingStores(1), 1u);
    m->readSync(1, 2, /*acquire=*/true);
    EXPECT_EQ(m->pendingStores(1), 0u);
    EXPECT_EQ(m->readData(1, 1).value, 42);
}

TEST(InvalidateModel, AcquireFlushesInboxOnEveryWeakModel)
{
    // The header's contract: EVERY acquire flushes the whole inbox
    // before reading, on every weak model kind — including the
    // store-ordered TSO/PSO realizations.
    for (const ModelKind kind : kAllModels) {
        if (kind == ModelKind::SC)
            continue;
        auto m = makeModelOf(Realization::Invalidate, kind, 2, 4,
                             {}, 1.0);
        m->readData(1, 1); // cache the line
        m->writeData(0, 1, 42, 7);
        ASSERT_EQ(m->pendingStores(1), 1u) << modelName(kind);
        m->readSync(1, 2, /*acquire=*/true);
        EXPECT_EQ(m->pendingStores(1), 0u) << modelName(kind);
        EXPECT_EQ(m->readData(1, 1).value, 42) << modelName(kind);
    }
}

TEST(InvalidateModel, NonAcquireSyncFlushesOnlyOnDrainAllModels)
{
    // The second half of the contract: sync WRITES flush the inbox
    // exactly on the drainOnAllSync models (WO, DRF0, TSO, PSO) and
    // leave it queued on RCsc/DRF1.
    for (const ModelKind kind : kAllModels) {
        if (kind == ModelKind::SC)
            continue;
        auto m = makeModelOf(Realization::Invalidate, kind, 2, 4,
                             {}, 1.0);
        m->readData(1, 1);
        m->writeData(0, 1, 42, 7);
        ASSERT_EQ(m->pendingStores(1), 1u) << modelName(kind);
        m->writeSync(1, 3, 1, 8, /*release=*/false);
        const bool drains = kind == ModelKind::WO ||
                            kind == ModelKind::DRF0 ||
                            kind == ModelKind::TSO ||
                            kind == ModelKind::PSO;
        EXPECT_EQ(m->pendingStores(1), drains ? 0u : 1u)
            << modelName(kind);
    }
}

TEST(InvalidateModel, TickEventuallyDelivers)
{
    auto m = makeModelOf(Realization::Invalidate, ModelKind::WO, 2, 4,
                         {}, 0.0);
    Rng rng(3);
    m->readData(1, 1);
    m->writeData(0, 1, 42, 7);
    for (int i = 0; i < 10; ++i)
        m->tick(rng);
    EXPECT_EQ(m->readData(1, 1).value, 42);
}

TEST(InvalidateModel, ScAppliesInstantly)
{
    auto m = makeModelOf(Realization::Invalidate, ModelKind::SC, 2, 4);
    m->readData(1, 1);
    m->writeData(0, 1, 42, 7);
    const auto r = m->readData(1, 1);
    EXPECT_EQ(r.value, 42);
    EXPECT_FALSE(r.stale);
}

TEST(InvalidateModel, DrainAddrDeliversSelectively)
{
    auto m = makeModelOf(Realization::Invalidate, ModelKind::WO, 2, 4,
                         {}, 1.0);
    m->readData(1, 1);
    m->readData(1, 2);
    m->writeData(0, 1, 10, 5);
    m->writeData(0, 2, 20, 6);
    EXPECT_EQ(m->pendingStores(1), 2u);
    m->drainAddr(0, 2);
    EXPECT_EQ(m->pendingStores(1), 1u);
    EXPECT_EQ(m->readData(1, 2).value, 20);
    EXPECT_EQ(m->readData(1, 1).value, 0); // still stale
}

TEST(InvalidateScenario, Figure1aViolationReproduces)
{
    const auto s = stageInvalidateFigure1a();
    EXPECT_EQ(s.result.finalRegs[1][0], 1); // y: new
    EXPECT_EQ(s.result.finalRegs[1][1], 0); // x: old (stale cache)
    EXPECT_GT(s.result.staleReads, 0u);

    const auto det = analyzeExecution(s.result);
    EXPECT_TRUE(det.anyDataRace());
    const auto bad = checkCondition34(det.races(), det.scp(),
                                      det.augmented());
    EXPECT_TRUE(bad.empty());
}

TEST(InvalidateScenario, ViolationOnAllWeakModels)
{
    for (const auto kind : {ModelKind::WO, ModelKind::RCsc,
                            ModelKind::DRF0, ModelKind::DRF1}) {
        const auto s = stageInvalidateFigure1a(kind);
        EXPECT_EQ(s.result.finalRegs[1][0], 1) << modelName(kind);
        EXPECT_EQ(s.result.finalRegs[1][1], 0) << modelName(kind);
    }
}

class RealizationSweep
    : public ::testing::TestWithParam<Realization>
{
};

TEST_P(RealizationSweep, RaceFreeProgramsStaySc)
{
    // Condition 3.4(1) on both realizations.
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        const Program p = randomRaceFreeProgram(seed);
        for (const auto kind :
             {ModelKind::WO, ModelKind::RCsc, ModelKind::DRF0,
              ModelKind::DRF1}) {
            ExecOptions opts;
            opts.model = kind;
            opts.realization = GetParam();
            opts.seed = seed;
            opts.drainLaziness = 0.9;
            const auto res = runProgram(p, opts);
            ASSERT_TRUE(res.completed);
            EXPECT_EQ(res.staleReads, 0u)
                << modelName(kind) << " seed " << seed;
            EXPECT_FALSE(analyzeExecution(res).anyDataRace());
        }
    }
}

TEST_P(RealizationSweep, Condition34HoldsOnRacyPrograms)
{
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        const Program p = randomRacyProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.realization = GetParam();
        opts.seed = seed + 3;
        opts.drainLaziness = 0.95;
        const auto det = analyzeExecution(runProgram(p, opts));
        const auto bad = checkCondition34(det.races(), det.scp(),
                                          det.augmented());
        EXPECT_TRUE(bad.empty()) << "seed " << seed;
    }
}

TEST_P(RealizationSweep, LockedCounterCorrect)
{
    const Program p = lockedCounter(3, 4);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::DRF1;
        opts.realization = GetParam();
        opts.seed = seed;
        opts.drainLaziness = 0.8;
        const auto res = runProgram(p, opts);
        ASSERT_TRUE(res.completed);
        EXPECT_EQ(res.memAt(1), 12);
        EXPECT_EQ(res.staleReads, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BothRealizations, RealizationSweep,
    ::testing::ValuesIn(kAllRealizations),
    [](const auto &info) {
        return std::string(realizationName(info.param)) ==
                       "store-buffer"
                   ? "StoreBuffer"
                   : "Invalidate";
    });

} // namespace
} // namespace wmr
