/**
 * @file
 * Small, fast, deterministic pseudo-random number generator.
 *
 * All randomized components of wmrace (schedulers, drain policies,
 * workload generators) take an explicit seed so every execution is
 * reproducible.  We use xoshiro256** which has excellent statistical
 * quality for simulation purposes and is trivially seedable.
 */

#ifndef WMR_COMMON_RNG_HH
#define WMR_COMMON_RNG_HH

#include <cstdint>

namespace wmr {

/** Deterministic xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the full state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit random word. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling (biased by at
        // most 2^-64, irrelevant for simulation workloads).
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** @return true with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace wmr

#endif // WMR_COMMON_RNG_HH
