/**
 * @file
 * Robustness fuzzing: corrupted trace files must be rejected with a
 * clean fatal() diagnostic (exit 1) or decode to a valid trace —
 * never crash, hang, or allocate unboundedly.  Runs each mutated
 * buffer in a gtest death-test subprocess.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include "common/rng.hh"
#include "trace/trace_io.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

std::vector<std::uint8_t>
baseline()
{
    const auto s = stageFigure2bExecution({.regionSize = 6,
                                           .staleOffset = 2});
    return serializeTrace(buildTrace(s.result,
                                     {.keepMemberOps = true}));
}

/** Exit status predicate: clean exit 0 (valid) or fatal exit 1. */
bool
cleanOrFatal(int status)
{
    return WIFEXITED(status) && (WEXITSTATUS(status) == 0 ||
                                 WEXITSTATUS(status) == 1);
}

TEST(TraceFuzz, SingleByteMutationsNeverCrash)
{
    const auto bytes = baseline();
    Rng rng(99);
    for (int trial = 0; trial < 25; ++trial) {
        auto mutated = bytes;
        const std::size_t pos =
            8 + rng.below(mutated.size() - 8); // keep the magic
        mutated[pos] ^= static_cast<std::uint8_t>(
            1u << rng.below(8));
        EXPECT_EXIT(
            {
                const auto trace = deserializeTrace(mutated);
                // If it decoded, it must be self-consistent enough
                // to answer basic queries.
                (void)trace.events().size();
                std::exit(0);
            },
            cleanOrFatal, "")
            << "trial " << trial << " pos " << pos;
    }
}

TEST(TraceFuzz, TruncationsNeverCrash)
{
    const auto bytes = baseline();
    Rng rng(7);
    for (int trial = 0; trial < 15; ++trial) {
        auto mutated = bytes;
        mutated.resize(8 + rng.below(mutated.size() - 8));
        EXPECT_EXIT(
            {
                (void)deserializeTrace(mutated);
                std::exit(0);
            },
            cleanOrFatal, "")
            << "trial " << trial;
    }
}

TEST(TraceFuzz, RandomGarbageNeverCrashes)
{
    Rng rng(13);
    for (int trial = 0; trial < 15; ++trial) {
        std::vector<std::uint8_t> junk(
            8 + rng.below(256));
        // Valid magic so we exercise the body parser, then noise.
        const char magic[8] = {'W', 'M', 'R', 'T', 'R', 'C', '0',
                               '1'};
        std::copy(std::begin(magic), std::end(magic), junk.begin());
        for (std::size_t i = 8; i < junk.size(); ++i)
            junk[i] = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EXIT(
            {
                (void)deserializeTrace(junk);
                std::exit(0);
            },
            cleanOrFatal, "")
            << "trial " << trial;
    }
}

} // namespace
} // namespace wmr
