/**
 * @file
 * Reproduction of Figure 1: executions (a) with and (b) without data
 * races, across all five memory models.
 *
 * The figure's claims, machine-checked and tabulated:
 *  - (a) races on every model; on weak models the classic violation
 *    (y new, x old) is reachable and flagged by a stale read;
 *  - (b) is data-race-free, executes sequentially consistently on
 *    every model (Condition 3.4(1)), and the Unset/Test&Set pairing
 *    orders the conflicting accesses.
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "workload/scenarios.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

void
reproduce()
{
    section("Figure 1(a): execution WITH data races");
    std::printf("  %-6s %8s %12s %12s %14s\n", "model", "races",
                "first parts", "stale reads", "y=new,x=old?");
    for (const auto kind : kAllModels) {
        std::size_t races = 0, firsts = 0;
        std::uint64_t stale = 0;
        bool violation = false;
        if (kind == ModelKind::SC) {
            for (std::uint64_t seed = 0; seed < 50; ++seed) {
                ExecOptions opts;
                opts.model = kind;
                opts.seed = seed;
                const auto res = runProgram(figure1a(), opts);
                stale += res.staleReads;
                const auto det = analyzeExecution(res);
                races += det.numDataRaces();
                firsts += det.partitions().firstPartitions.size();
                violation |= res.finalRegs[1][0] == 1 &&
                             res.finalRegs[1][1] == 0;
            }
            std::printf("  %-6s %8zu %12zu %12llu %14s\n", "SC",
                        races, firsts,
                        static_cast<unsigned long long>(stale),
                        "never");
        } else {
            const auto s = stageFigure1aViolation(kind);
            const auto det = analyzeExecution(s.result);
            violation = s.result.finalRegs[1][0] == 1 &&
                        s.result.finalRegs[1][1] == 0;
            std::printf("  %-6s %8zu %12zu %12llu %14s\n",
                        std::string(modelName(kind)).c_str(),
                        det.numDataRaces(),
                        det.partitions().firstPartitions.size(),
                        static_cast<unsigned long long>(
                            s.result.staleReads),
                        violation ? "YES (staged)" : "no");
        }
    }
    note("paper: the race makes SC violation possible on weak "
         "models; the race itself");
    note("is detected identically everywhere and lies in the SCP.");

    section("Figure 1(b): execution WITHOUT data races");
    std::printf("  %-6s %8s %12s %12s %10s\n", "model", "races",
                "stale reads", "y,x read", "SC?");
    for (const auto kind : kAllModels) {
        std::size_t races = 0;
        std::uint64_t stale = 0;
        bool delivered = true;
        for (std::uint64_t seed = 0; seed < 50; ++seed) {
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed;
            opts.drainLaziness = 0.9;
            const auto res = runProgram(figure1b(), opts);
            stale += res.staleReads;
            delivered &= res.finalRegs[1][1] == 1 &&
                         res.finalRegs[1][2] == 1;
            races += analyzeExecution(res).numDataRaces();
        }
        std::printf("  %-6s %8zu %12llu %12s %10s\n",
                    std::string(modelName(kind)).c_str(), races,
                    static_cast<unsigned long long>(stale),
                    delivered ? "1,1 always" : "STALE!",
                    stale == 0 && races == 0 ? "yes" : "NO");
    }
    note("paper: data-race-free programs get sequential consistency "
         "on all weak models.");
}

void
BM_DetectFig1a(benchmark::State &state)
{
    const auto res = runProgram(figure1a(), {.model = ModelKind::SC});
    for (auto _ : state) {
        auto det = analyzeExecution(res);
        benchmark::DoNotOptimize(det.anyDataRace());
    }
}
BENCHMARK(BM_DetectFig1a);

void
BM_SimulateFig1b(benchmark::State &state)
{
    const auto kind = static_cast<ModelKind>(state.range(0));
    std::uint64_t seed = 0;
    for (auto _ : state) {
        ExecOptions opts;
        opts.model = kind;
        opts.seed = ++seed;
        benchmark::DoNotOptimize(
            runProgram(figure1b(), opts).totalCycles);
    }
}
BENCHMARK(BM_SimulateFig1b)->DenseRange(0, 4)->ArgName("model");

} // namespace

WMR_BENCH_MAIN(reproduce)
