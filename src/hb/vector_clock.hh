/**
 * @file
 * Classic Lamport/Mattern vector clocks.
 *
 * Used by the on-the-fly detectors (onthefly/) to maintain the hb1
 * relation incrementally: each processor carries a clock; release
 * writes publish the clock at the released location; acquire reads
 * join the publisher's clock (so1), and po advances the issuing
 * processor's own component.
 */

#ifndef WMR_HB_VECTOR_CLOCK_HH
#define WMR_HB_VECTOR_CLOCK_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace wmr {

/** A vector timestamp over a fixed set of processors. */
class VectorClock
{
  public:
    VectorClock() = default;

    /** Zero clock over @p nprocs processors. */
    explicit VectorClock(ProcId nprocs)
        : c_(nprocs, 0)
    {
    }

    /** @return component for processor @p p. */
    std::uint64_t
    get(ProcId p) const
    {
        return p < c_.size() ? c_[p] : 0;
    }

    /** Set component @p p to @p v. */
    void
    set(ProcId p, std::uint64_t v)
    {
        if (p >= c_.size())
            c_.resize(p + 1, 0);
        c_[p] = v;
    }

    /** Advance own component of @p p by one. */
    void
    tick(ProcId p)
    {
        set(p, get(p) + 1);
    }

    /** Pointwise maximum with @p other (the join at an acquire). */
    void
    join(const VectorClock &other)
    {
        if (other.c_.size() > c_.size())
            c_.resize(other.c_.size(), 0);
        for (std::size_t i = 0; i < other.c_.size(); ++i)
            c_[i] = std::max(c_[i], other.c_[i]);
    }

    /** @return whether this ≤ other pointwise (this hb1 other). */
    bool
    lessOrEqual(const VectorClock &other) const
    {
        for (std::size_t i = 0; i < c_.size(); ++i) {
            if (c_[i] > other.get(static_cast<ProcId>(i)))
                return false;
        }
        return true;
    }

    /**
     * @return whether the single epoch (p, t) is ≤ this clock —
     * the FastTrack-style O(1) ordering test.
     */
    bool
    epochLeq(ProcId p, std::uint64_t t) const
    {
        return t <= get(p);
    }

    bool
    operator==(const VectorClock &other) const
    {
        const std::size_t n = std::max(c_.size(), other.c_.size());
        for (std::size_t i = 0; i < n; ++i) {
            const ProcId p = static_cast<ProcId>(i);
            if (get(p) != other.get(p))
                return false;
        }
        return true;
    }

    /** Render as "<3,0,7>" for reports. */
    std::string
    str() const
    {
        std::string out = "<";
        for (std::size_t i = 0; i < c_.size(); ++i) {
            if (i)
                out += ",";
            out += std::to_string(c_[i]);
        }
        out += ">";
        return out;
    }

  private:
    std::vector<std::uint64_t> c_;
};

} // namespace wmr

#endif // WMR_HB_VECTOR_CLOCK_HH
