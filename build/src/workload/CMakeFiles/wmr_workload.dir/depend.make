# Empty dependencies file for wmr_workload.
# This may be replaced when dependencies are built.
