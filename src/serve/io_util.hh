/**
 * @file
 * Tiny whole-file I/O helpers shared by the serve subsystem's disk
 * paths (result-cache persistence, request spooling).  Both write
 * sides go through writeFileAtomic() — temp-then-rename — so a crash
 * mid-write leaves either the old file or none, never a torn one;
 * readers additionally CRC-frame their payloads and treat damage as
 * absence.
 */

#ifndef WMR_SERVE_IO_UTIL_HH
#define WMR_SERVE_IO_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace wmr::serve {

/** Read @p path entirely into @p out. @return false on open/read
 *  failure (out is unspecified). */
inline bool
readWholeFile(const std::string &path,
              std::vector<std::uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rbe");
    if (f == nullptr)
        return false;
    out.clear();
    std::uint8_t buf[1 << 16];
    for (;;) {
        const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
        out.insert(out.end(), buf, buf + n);
        if (n < sizeof(buf))
            break;
    }
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

/** Write @p bytes to @p path via a ".tmp" sibling and rename(2), so
 *  the destination is never observable half-written. */
inline bool
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wbe");
    if (f == nullptr)
        return false;
    const bool wrote =
        bytes.empty() ||
        std::fwrite(bytes.data(), 1, bytes.size(), f) ==
            bytes.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace wmr::serve

#endif // WMR_SERVE_IO_UTIL_HH
