/**
 * @file
 * Seeded random program generator for property tests and sweeps.
 *
 * Programs are generated as sequences of BLOCKS per processor.  Every
 * shared data word is statically owned by one lock (addr mod
 * numLocks); a block picks a lock, acquires it, performs data
 * accesses only to words that lock owns, and releases.  With
 * unlockedProb == 0 every pair of conflicting data accesses is
 * therefore ordered through that lock's Unset/Test&Set pairing — the
 * program is data-race-free BY CONSTRUCTION.  unlockedProb > 0 makes
 * a block skip the lock, injecting data races.
 */

#ifndef WMR_WORKLOAD_RANDOM_GEN_HH
#define WMR_WORKLOAD_RANDOM_GEN_HH

#include "prog/program.hh"

namespace wmr {

/** Shape of a generated program. */
struct RandomProgConfig
{
    std::uint64_t seed = 1;
    ProcId procs = 3;
    std::uint32_t blocksPerProc = 5;
    std::uint32_t opsPerBlock = 4;
    Addr dataWords = 8;
    std::uint32_t numLocks = 2;

    /** Probability a block runs without its lock (race injection). */
    double unlockedProb = 0.0;

    /** Probability a data op is a write (vs a read). */
    double writeProb = 0.5;
};

/**
 * Generate a program per @p cfg.  Lock words occupy addresses
 * [0, numLocks); data words occupy [numLocks, numLocks + dataWords).
 */
Program randomProgram(const RandomProgConfig &cfg);

/** Convenience: a data-race-free random program. */
Program randomRaceFreeProgram(std::uint64_t seed, ProcId procs = 3);

/** Convenience: a racy random program (unlockedProb = 0.35). */
Program randomRacyProgram(std::uint64_t seed, ProcId procs = 3);

} // namespace wmr

#endif // WMR_WORKLOAD_RANDOM_GEN_HH
