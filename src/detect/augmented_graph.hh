/**
 * @file
 * The augmented happens-before-1 graph G' of Section 4.2.
 *
 * G' is the hb1 graph plus, for each race 〈A,B〉, a doubly directed
 * edge between A and B.  By construction, a path exists in G' from A
 * (or B) to C (or D) iff 〈A,B〉 affects 〈C,D〉 (Def. 3.3), so the
 * strongly connected components of G' group mutually affecting races
 * and the condensation orders the groups.
 */

#ifndef WMR_DETECT_AUGMENTED_GRAPH_HH
#define WMR_DETECT_AUGMENTED_GRAPH_HH

#include <vector>

#include "detect/race.hh"
#include "hb/hb_graph.hh"
#include "hb/reachability.hh"

namespace wmr {

/** G' plus its reachability oracle. */
class AugmentedGraph
{
  public:
    /**
     * Build G' from the hb1 graph and the enumerated races.
     * @p threads is the clock-propagation worker budget of the G'
     * reachability oracle (0 = hardware concurrency); the oracle is
     * bit-identical at every value.
     */
    AugmentedGraph(const HbGraph &hb, const std::vector<DataRace> &races,
                   const ExecutionTrace &trace, unsigned threads = 1);

    /** @return G' adjacency (hb edges + double race edges). */
    const AdjList &adjacency() const { return adj_; }

    /** @return reachability oracle over G'. */
    const ReachabilityIndex &reach() const { return reach_; }

    /**
     * @return whether race @p r affects event @p z (Def. 3.3): z is
     * an endpoint of r, or a G' path leads from an endpoint of r
     * to z.
     */
    bool raceAffectsEvent(const DataRace &r, EventId z) const;

    /** @return whether race @p r affects race @p s (Def. 3.3). */
    bool raceAffectsRace(const DataRace &r, const DataRace &s) const;

  private:
    AdjList adj_;
    ReachabilityIndex reach_;
};

} // namespace wmr

#endif // WMR_DETECT_AUGMENTED_GRAPH_HH
