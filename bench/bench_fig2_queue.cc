/**
 * @file
 * Reproduction of Figure 2: the work-queue fragment with the missing
 * Test&Set, its weak execution, and the happens-before-1 analysis
 * separating sequentially consistent from non-SC data races.
 *
 * Regenerates the figure's content:
 *  - the dequeued stale offset (the paper's 37),
 *  - the SC data races on Q/QEmpty (first partition, in the SCP),
 *  - the non-SC data races on the region (non-first partition),
 *  - the SCP boundary after P2's Unset(s),
 * and sweeps the region size to show the non-SC race volume grows
 * with the overlap while the reported first partition stays put.
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "workload/scenarios.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

void
reproduce()
{
    section("Figure 2(b): the staged weak execution");
    const auto s = stageFigure2bExecution();
    const auto det = analyzeExecution(s.result);
    std::printf("%s", formatReport(det, &s.program).c_str());
    note("P2 dequeued " +
         std::to_string(s.result.finalRegs[1][2]) +
         " (paper: 37); its region work is post-SCP.");

    section("region-size sweep: non-SC races grow, report stays put");
    std::printf("  %-8s %10s %12s %14s %14s\n", "region", "races",
                "SCP races", "non-SC races", "first parts");
    for (const std::uint32_t n : {8u, 16u, 32u, 64u, 100u, 200u}) {
        const auto sw = stageFigure2bExecution(
            {.regionSize = n, .staleOffset = n / 3});
        const auto d = analyzeExecution(sw.result);
        std::size_t scp = 0;
        for (RaceId r = 0;
             r < static_cast<RaceId>(d.races().size()); ++r) {
            scp += d.scp().raceInScp[r];
        }
        std::printf("  %-8u %10zu %12zu %14zu %14zu\n", n,
                    d.races().size(), scp, d.races().size() - scp,
                    d.partitions().firstPartitions.size());
    }
    note("the programmer always sees ONE first partition: the "
         "missing Test&Set.");

    section("the corrected program (Test&Set restored)");
    std::size_t races = 0;
    std::uint64_t stale = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        opts.drainLaziness = 0.9;
        const auto res = runProgram(
            figure2Queue({.regionSize = 100,
                          .staleOffset = 37,
                          .withTestAndSet = true}),
            opts);
        stale += res.staleReads;
        races += analyzeExecution(res).numDataRaces();
    }
    std::printf("  30 weak runs: %zu data races, %llu stale reads\n",
                races, static_cast<unsigned long long>(stale));
}

void
BM_StageFigure2b(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stageFigure2bExecution({.regionSize = n,
                                    .staleOffset = n / 3})
                .result.ops.size());
    }
}
BENCHMARK(BM_StageFigure2b)->Arg(16)->Arg(64)->Arg(256);

void
BM_AnalyzeFigure2b(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    const auto s = stageFigure2bExecution(
        {.regionSize = n, .staleOffset = n / 3});
    for (auto _ : state) {
        auto det = analyzeExecution(s.result);
        benchmark::DoNotOptimize(det.races().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(s.result.ops.size()));
}
BENCHMARK(BM_AnalyzeFigure2b)->Arg(16)->Arg(64)->Arg(256);

} // namespace

WMR_BENCH_MAIN(reproduce)
