# Empty dependencies file for test_staticdet.
# This may be replaced when dependencies are built.
