# Empty compiler generated dependencies file for static_dynamic.
# This may be replaced when dependencies are built.
