/**
 * @file
 * Tests of the segmented, checksummed trace container and its
 * salvage reader (src/trace/segmented_io):
 *
 *  - SegmentedRoundTrip.*: serialize -> strict read is lossless and
 *    transparent through the classic tryDeserializeTrace() sniffer;
 *  - Salvage.*: EVERY mid-segment truncation and EVERY single-bit
 *    flip comes back as exactly the longest valid whole-segment
 *    prefix — never a crash, never silently wrong data;
 *  - SpillWriter.*: the incremental writer (the recorder's spill
 *    path), including crashSeal() and the deliberately torn frame
 *    of the fault-injection harness.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>
#include <vector>

#include "detect/analysis.hh"
#include "sim/executor.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"
#include "workload/random_gen.hh"

namespace fs = std::filesystem;

namespace wmr {
namespace {

/** Produce one in-memory trace from a seeded random program. */
ExecutionTrace
makeTrace(std::uint64_t seed, bool racy = true)
{
    const Program prog =
        racy ? randomRacyProgram(seed) : randomRaceFreeProgram(seed);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = seed;
    const auto res = runProgram(prog, opts);
    return buildTrace(res, {.keepMemberOps = true});
}

std::string
tempPath(const char *tag)
{
    return (fs::temp_directory_path() /
            (std::string(tag) + "." + std::to_string(::getpid()) +
             ".trace"))
        .string();
}

/** One frame of a segmented byte image, as the test walks it. */
struct Frame
{
    std::size_t begin = 0; ///< offset of the length header
    std::size_t end = 0;   ///< one past the trailing CRC
    char tag = 0;          ///< 'D' or 'F'
    std::uint64_t events = 0;
};

std::uint64_t
readVarint(const std::vector<std::uint8_t> &b, std::size_t &pos)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        const std::uint8_t byte = b.at(pos++);
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

/** Walk the frames of a WELL-FORMED segmented image. */
std::vector<Frame>
walkFrames(const std::vector<std::uint8_t> &b)
{
    std::vector<Frame> frames;
    std::size_t pos = 8; // past the magic
    while (pos < b.size()) {
        Frame f;
        f.begin = pos;
        const std::uint32_t len =
            static_cast<std::uint32_t>(b.at(pos)) |
            static_cast<std::uint32_t>(b.at(pos + 1)) << 8 |
            static_cast<std::uint32_t>(b.at(pos + 2)) << 16 |
            static_cast<std::uint32_t>(b.at(pos + 3)) << 24;
        f.end = pos + 4 + len + 4;
        f.tag = static_cast<char>(b.at(pos + 4));
        if (f.tag == 'D') {
            std::size_t p = pos + 5;
            readVarint(b, p); // opsSoFar
            readVarint(b, p); // droppedSoFar
            f.events = readVarint(b, p);
        }
        frames.push_back(f);
        pos = f.end;
    }
    return frames;
}

/** Events in D-segments wholly before byte offset @p damagedAt. */
std::uint64_t
eventsBeforeDamage(const std::vector<Frame> &frames,
                   std::size_t damagedAt)
{
    std::uint64_t n = 0;
    for (const auto &f : frames) {
        if (f.end > damagedAt)
            break;
        n += f.events;
    }
    return n;
}

// ---------------------------------------------------------------
// SegmentedRoundTrip
// ---------------------------------------------------------------

TEST(SegmentedRoundTrip, StrictReadIsLossless)
{
    const ExecutionTrace src = makeTrace(7);
    const auto bytes = serializeSegmentedTrace(src, 4);
    ASSERT_TRUE(looksSegmented(bytes.data(), bytes.size()));

    const auto res = tryReadSegmentedTrace(bytes);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_TRUE(res.salvage.finSeen);
    EXPECT_FALSE(res.salvage.salvaged);
    EXPECT_EQ(res.salvage.segmentsDropped, 0u);
    EXPECT_EQ(res.salvage.unresolvedPairings, 0u);

    ASSERT_EQ(res.trace.events().size(), src.events().size());
    EXPECT_EQ(res.trace.numProcs(), src.numProcs());
    EXPECT_EQ(res.trace.memWords(), src.memWords());
    EXPECT_EQ(res.trace.totalOps(), src.totalOps());
    for (std::size_t i = 0; i < src.events().size(); ++i) {
        const Event &a = src.events()[i];
        const Event &b = res.trace.events()[i];
        EXPECT_EQ(a.kind, b.kind) << "event " << i;
        EXPECT_EQ(a.proc, b.proc) << "event " << i;
        EXPECT_EQ(a.firstOp, b.firstOp) << "event " << i;
        EXPECT_EQ(a.pairedRelease, b.pairedRelease) << "event " << i;
        EXPECT_TRUE(a.readSet == b.readSet) << "event " << i;
        EXPECT_TRUE(a.writeSet == b.writeSet) << "event " << i;
    }
}

TEST(SegmentedRoundTrip, ClassicReaderSniffsTheMagic)
{
    const ExecutionTrace src = makeTrace(11);
    const auto bytes = serializeSegmentedTrace(src);
    // The pre-existing entry point must accept both containers.
    const auto res = tryDeserializeTrace(bytes);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.trace.events().size(), src.events().size());
}

TEST(SegmentedRoundTrip, AnalysisVerdictSurvivesTheContainer)
{
    const ExecutionTrace src = makeTrace(13, /*racy=*/true);
    const auto bytes = serializeSegmentedTrace(src, 3);
    auto res = tryReadSegmentedTrace(bytes);
    ASSERT_TRUE(res.ok()) << res.error;
    const DetectionResult a = analyzeTrace(ExecutionTrace(src));
    const DetectionResult b = analyzeTrace(std::move(res.trace));
    EXPECT_EQ(a.anyDataRace(), b.anyDataRace());
    EXPECT_EQ(a.numDataRaces(), b.numDataRaces());
    EXPECT_EQ(a.reportedRaces().size(), b.reportedRaces().size());
}

// ---------------------------------------------------------------
// Salvage: truncation and corruption, exhaustively.
// ---------------------------------------------------------------

TEST(Salvage, EveryTruncationRecoversAWholeSegmentPrefix)
{
    const ExecutionTrace src = makeTrace(17);
    const auto bytes = serializeSegmentedTrace(src, 2);
    const auto frames = walkFrames(bytes);
    ASSERT_GT(frames.size(), 3u) << "want a multi-segment file";

    for (std::size_t cut = 8; cut < bytes.size(); ++cut) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + cut);

        // Strict mode must reject every truncation.
        const auto strict = tryReadSegmentedTrace(prefix);
        EXPECT_FALSE(strict.ok()) << "cut at " << cut;

        // Salvage must recover exactly the whole segments that fit.
        const auto res = trySalvageTrace(prefix);
        ASSERT_TRUE(res.ok()) << "cut " << cut << ": " << res.error;
        EXPECT_TRUE(res.salvage.salvaged) << "cut at " << cut;
        EXPECT_EQ(res.salvage.eventsRecovered,
                  eventsBeforeDamage(frames, cut))
            << "cut at " << cut;
        EXPECT_EQ(res.trace.events().size(),
                  res.salvage.eventsRecovered);

        // The recovered events are a prefix of the original's (both
        // producers order the file by firstOp).
        for (std::size_t i = 0; i < res.trace.events().size(); ++i) {
            EXPECT_EQ(res.trace.events()[i].firstOp,
                      src.events()[i].firstOp)
                << "cut " << cut << " event " << i;
        }
    }
}

TEST(Salvage, EverySingleBitFlipIsCaught)
{
    const ExecutionTrace src = makeTrace(19);
    const auto bytes = serializeSegmentedTrace(src, 2);
    const auto frames = walkFrames(bytes);
    ASSERT_GT(frames.size(), 2u);

    for (std::size_t byte = 8; byte < bytes.size(); ++byte) {
        for (int bit : {0, 3, 7}) {
            auto corrupt = bytes;
            corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);

            EXPECT_FALSE(tryReadSegmentedTrace(corrupt).ok())
                << "strict accepted flip at byte " << byte;

            const auto res = trySalvageTrace(corrupt);
            ASSERT_TRUE(res.ok())
                << "byte " << byte << ": " << res.error;
            EXPECT_TRUE(res.salvage.salvaged)
                << "flip at byte " << byte;
            EXPECT_EQ(res.salvage.eventsRecovered,
                      eventsBeforeDamage(frames, byte))
                << "flip at byte " << byte;
        }
    }
}

TEST(Salvage, MissingFinAloneLosesNoEvents)
{
    // The SIGKILL shape: every data segment reached the disk, only
    // the FIN is missing.
    const ExecutionTrace src = makeTrace(23);
    const auto bytes = serializeSegmentedTrace(src, 4);
    const auto frames = walkFrames(bytes);
    ASSERT_EQ(frames.back().tag, 'F');
    const std::vector<std::uint8_t> chopped(
        bytes.begin(),
        bytes.begin() +
            static_cast<std::ptrdiff_t>(frames.back().begin));

    const auto strict = tryReadSegmentedTrace(chopped);
    ASSERT_FALSE(strict.ok());
    EXPECT_NE(strict.error.find("FIN"), std::string::npos)
        << strict.error;

    const auto res = trySalvageTrace(chopped);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_TRUE(res.salvage.salvaged);
    EXPECT_FALSE(res.salvage.finSeen);
    EXPECT_EQ(res.salvage.segmentsDropped, 0u);
    EXPECT_EQ(res.salvage.eventsRecovered, src.events().size());
    EXPECT_EQ(res.trace.totalOps(), src.totalOps());
    // Without the FIN the shape is widened from the events; it must
    // still cover every referenced proc and word.
    EXPECT_EQ(res.trace.numProcs(), src.numProcs());
}

TEST(Salvage, GarbageBodyRecoversNothingButDoesNotFail)
{
    std::vector<std::uint8_t> bytes = {'W', 'M', 'R', 'S',
                                       'E', 'G', '0', '1'};
    for (int i = 0; i < 64; ++i)
        bytes.push_back(static_cast<std::uint8_t>(i * 37));
    const auto res = trySalvageTrace(bytes);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_TRUE(res.salvage.salvaged);
    EXPECT_EQ(res.salvage.eventsRecovered, 0u);
    EXPECT_GT(res.salvage.bytesDropped, 0u);
    EXPECT_TRUE(res.trace.events().empty());
}

TEST(Salvage, WrongMagicIsAHardError)
{
    const std::vector<std::uint8_t> junk = {'N', 'O', 'P', 'E'};
    EXPECT_FALSE(trySalvageTrace(junk).ok());
    EXPECT_FALSE(tryReadSegmentedTrace(junk).ok());
}

// ---------------------------------------------------------------
// SpillWriter: the recorder-side incremental producer.
// ---------------------------------------------------------------

/** Feed @p src's events through a SegmentSpillWriter as the tracer
 *  would: sealing every @p perSeal events. */
void
spillTrace(const ExecutionTrace &src, SegmentSpillWriter &w,
           std::size_t perSeal, bool andFinish)
{
    std::uint64_t ops = 0;
    std::size_t sinceSeal = 0;
    for (const Event &ev : src.events()) {
        SegEvent se;
        se.kind = ev.kind;
        se.proc = ev.proc;
        se.firstOp = ev.firstOp;
        se.lastOp = ev.lastOp;
        se.opCount = ev.opCount;
        if (ev.kind == EventKind::Sync) {
            se.syncOp = ev.syncOp;
            // Tokens: 1 + event id works because releases precede
            // their acquires in id order.
            if (ev.syncOp.release)
                se.releaseToken = 1 + ev.id;
            if (ev.pairedRelease != kNoEvent)
                se.pairedToken = 1 + ev.pairedRelease;
        } else {
            for (Addr a = 0; a < src.memWords(); ++a) {
                if (ev.readSet.test(a))
                    se.readWords.push_back(a);
                if (ev.writeSet.test(a))
                    se.writeWords.push_back(a);
            }
        }
        ops += ev.opCount;
        w.setCounters(ops, 0);
        w.addEvent(se);
        if (++sinceSeal == perSeal) {
            ASSERT_TRUE(w.sealSegment()) << w.lastError();
            sinceSeal = 0;
        }
    }
    if (andFinish) {
        SegShape shape;
        shape.procs = src.numProcs();
        shape.memWords = src.memWords();
        shape.firstStaleRead = src.firstStaleRead();
        shape.totalOps = src.totalOps();
        ASSERT_TRUE(w.finish(shape)) << w.lastError();
    }
}

TEST(SpillWriter, IncrementalWriterMatchesTheSerializer)
{
    const ExecutionTrace src = makeTrace(29);
    const std::string path = tempPath("wmr_spill_ok");
    {
        SegmentSpillWriter w;
        ASSERT_TRUE(w.open(path)) << w.lastError();
        spillTrace(src, w, 3, /*andFinish=*/true);
        EXPECT_GT(w.segmentsWritten(), 1u);
    }
    auto res = tryReadSegmentedTraceFile(path);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_FALSE(res.salvage.salvaged);
    ASSERT_EQ(res.trace.events().size(), src.events().size());
    for (std::size_t i = 0; i < src.events().size(); ++i) {
        EXPECT_EQ(res.trace.events()[i].pairedRelease,
                  src.events()[i].pairedRelease)
            << "event " << i;
    }
    fs::remove(path);
}

TEST(SpillWriter, CrashSealLeavesASalvageableFile)
{
    const ExecutionTrace src = makeTrace(31);
    const std::string path = tempPath("wmr_spill_crash");
    {
        SegmentSpillWriter w;
        ASSERT_TRUE(w.open(path)) << w.lastError();
        // Seal the first few, leave the rest pending, then take the
        // fatal-signal path instead of finish().
        spillTrace(src, w, 4, /*andFinish=*/false);
        ASSERT_TRUE(w.crashSeal()) << w.lastError();
    }
    const auto res = trySalvageTraceFile(path);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_TRUE(res.salvage.salvaged);
    EXPECT_FALSE(res.salvage.finSeen);
    EXPECT_EQ(res.salvage.eventsRecovered, src.events().size())
        << "crashSeal must flush everything pending";
    fs::remove(path);
}

TEST(SpillWriter, TornFrameIsDroppedExactly)
{
    const ExecutionTrace src = makeTrace(37);
    const std::string path = tempPath("wmr_spill_torn");
    std::uint64_t sealedEvents = 0;
    {
        SegmentSpillWriter w;
        ASSERT_TRUE(w.open(path)) << w.lastError();
        std::size_t half = src.events().size() / 2;
        std::uint64_t ops = 0;
        for (std::size_t i = 0; i < half; ++i) {
            const Event &ev = src.events()[i];
            SegEvent se;
            se.kind = ev.kind;
            se.proc = ev.proc;
            se.firstOp = ev.firstOp;
            se.lastOp = ev.lastOp;
            se.opCount = ev.opCount;
            if (ev.kind == EventKind::Sync) {
                se.syncOp = ev.syncOp;
                if (ev.syncOp.release)
                    se.releaseToken = 1 + ev.id;
                if (ev.pairedRelease != kNoEvent)
                    se.pairedToken = 1 + ev.pairedRelease;
            }
            ops += ev.opCount;
            w.setCounters(ops, 0);
            w.addEvent(se);
        }
        ASSERT_TRUE(w.sealSegment()) << w.lastError();
        sealedEvents = half;
        w.writeTornFrame(); // the crash-mid-segment fault point
    }
    const auto strict = tryReadSegmentedTraceFile(path);
    EXPECT_FALSE(strict.ok());

    const auto res = trySalvageTraceFile(path);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_TRUE(res.salvage.salvaged);
    EXPECT_EQ(res.salvage.segmentsDropped, 1u);
    EXPECT_EQ(res.salvage.eventsRecovered, sealedEvents);
    fs::remove(path);
}

TEST(SpillWriter, MissingDirectoryFailsOpenCleanly)
{
    SegmentSpillWriter w;
    EXPECT_FALSE(w.open("/nonexistent-dir-wmr/x.trace"));
    EXPECT_FALSE(w.lastError().empty());
    EXPECT_FALSE(w.isOpen());
}

} // namespace
} // namespace wmr
