/**
 * @file
 * Lock-free registry of runtime synchronization objects.
 *
 * Every annotated sync object (a mutex, a condition-variable+mutex
 * pair, a thread fork/join handle — anything the program uses to
 * order accesses) maps to one SyncSlot carrying the two atomics the
 * annotation hot path needs:
 *
 *  - `lastToken`: the global release token most recently published on
 *    the object.  A release stores its fresh token here; an acquire
 *    loads it — that load IS the observed release→acquire (so1)
 *    pairing of Def. 2.2, captured at annotation time so the drain
 *    never has to guess.
 *  - `seq`: a per-object sequence number ticked by every sync
 *    annotation.  It gives the drain the per-location sync order
 *    Section 4.1 requires (and a total order to drain sync records
 *    in, which is what makes pairing resolution deadlock-free).
 *
 * The table is fixed-size open addressing with CAS insertion: no
 * locks anywhere, at the cost of a capacity ceiling.  When the table
 * fills, further objects degrade gracefully: their operations are
 * still recorded but carry no pairing (counted in RtStats so the
 * loss is visible).
 */

#ifndef WMR_RT_SYNC_REGISTRY_HH
#define WMR_RT_SYNC_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace wmr::rt {

/** Per-sync-object atomic state (see file comment). */
struct SyncSlot
{
    std::atomic<const void *> key{nullptr};
    std::atomic<std::uint64_t> lastToken{0};
    std::atomic<std::uint64_t> seq{0};
};

/** Fixed-capacity lock-free pointer → SyncSlot map. */
class SyncRegistry
{
  public:
    /** @param capacity slot count; must be a power of two. */
    explicit SyncRegistry(std::size_t capacity)
        : mask_(capacity - 1), slots_(capacity)
    {
        wmr_assert(capacity >= 2 &&
                   (capacity & (capacity - 1)) == 0);
    }

    /**
     * @return the slot of @p obj, inserting it if new; nullptr when
     * the table is full (the caller records the op unpaired).
     */
    SyncSlot *
    findOrInsert(const void *obj)
    {
        std::size_t idx = hash(obj) & mask_;
        for (std::size_t probe = 0; probe <= mask_; ++probe) {
            SyncSlot &slot = slots_[idx];
            const void *cur =
                slot.key.load(std::memory_order_acquire);
            if (cur == obj)
                return &slot;
            if (cur == nullptr) {
                const void *expected = nullptr;
                if (slot.key.compare_exchange_strong(
                        expected, obj, std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
                    return &slot;
                }
                if (expected == obj)
                    return &slot; // lost the race to ourselves
            }
            idx = (idx + 1) & mask_;
        }
        return nullptr;
    }

    /** @return number of registered objects (drain/stats use only). */
    std::size_t
    sizeApprox() const
    {
        std::size_t n = 0;
        for (const auto &s : slots_) {
            if (s.key.load(std::memory_order_relaxed))
                ++n;
        }
        return n;
    }

  private:
    static std::size_t
    hash(const void *p)
    {
        // Fibonacci hash of the pointer bits (objects are at least
        // word-aligned, so shift the dead low bits away first).
        auto v = reinterpret_cast<std::uintptr_t>(p) >> 3;
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(v) *
             0x9e3779b97f4a7c15ull) >>
            32);
    }

    const std::size_t mask_;
    std::vector<SyncSlot> slots_;
};

} // namespace wmr::rt

#endif // WMR_RT_SYNC_REGISTRY_HH
