#include "onthefly/epoch_detector.hh"

namespace wmr {

EpochDetector::EpochDetector(ProcId nprocs, Addr words,
                             std::size_t maxPublishedClocks)
    : ClockedDetectorBase(nprocs, maxPublishedClocks)
{
    locs_.resize(words);
    stats_.metadataBytes =
        static_cast<std::uint64_t>(words) * sizeof(LocState);
}

EpochDetector::LocState &
EpochDetector::loc(Addr addr)
{
    if (addr >= locs_.size())
        locs_.resize(addr + 1);
    return locs_[addr];
}

void
EpochDetector::onOp(const MemOp &op)
{
    ++stats_.opsProcessed;
    if (op.sync) {
        LocState &l = loc(op.addr);
        if (op.kind == OpKind::Read)
            handleAcquire(op, l.syncFallback);
        else
            handleRelease(op, l.syncFallback);
    } else {
        if (op.kind == OpKind::Read)
            dataRead(op);
        else
            dataWrite(op);
    }
    procClock_[op.proc].tick(op.proc);
}

void
EpochDetector::dataRead(const MemOp &op)
{
    LocState &l = loc(op.addr);
    VectorClock &c = procClock_[op.proc];
    const std::uint64_t now = c.get(op.proc);

    // write-read check: O(1) epoch comparison.
    ++stats_.epochChecks;
    if (l.write.valid() && l.write.proc != op.proc &&
        !c.epochLeq(l.write.proc, l.write.ts)) {
        report({l.write.proc, l.write.pc, op.proc, op.pc, op.addr,
                op.id, l.write.ts, now});
    }

    if (l.sharedReads) {
        l.readVec[op.proc] = now;
        l.readPcVec[op.proc] = op.pc;
        return;
    }
    if (!l.read.valid() || l.read.proc == op.proc ||
        c.epochLeq(l.read.proc, l.read.ts)) {
        // Reads stay totally ordered: keep the cheap epoch.
        ++stats_.epochChecks;
        l.read = {op.proc, now, op.pc};
        return;
    }
    // Concurrent reads: inflate to a read vector (the adaptive step).
    l.sharedReads = true;
    l.readVec.assign(nprocs_, 0);
    l.readPcVec.assign(nprocs_, 0);
    l.readVec[l.read.proc] = l.read.ts;
    l.readPcVec[l.read.proc] = l.read.pc;
    l.readVec[op.proc] = now;
    l.readPcVec[op.proc] = op.pc;
    ++stats_.clockAllocations;
    stats_.metadataBytes += nprocs_ * 12ull;
}

void
EpochDetector::dataWrite(const MemOp &op)
{
    LocState &l = loc(op.addr);
    VectorClock &c = procClock_[op.proc];

    // write-write: O(1).
    ++stats_.epochChecks;
    if (l.write.valid() && l.write.proc != op.proc &&
        !c.epochLeq(l.write.proc, l.write.ts)) {
        report({l.write.proc, l.write.pc, op.proc, op.pc, op.addr,
                op.id, l.write.ts, c.get(op.proc)});
    }

    // read-write: O(1) in the unshared case, O(P) when inflated.
    if (l.sharedReads) {
        for (ProcId p = 0; p < nprocs_; ++p) {
            if (p == op.proc || l.readVec[p] == 0)
                continue;
            ++stats_.epochChecks;
            if (!c.epochLeq(p, l.readVec[p])) {
                report({p, l.readPcVec[p], op.proc, op.pc, op.addr,
                        op.id, l.readVec[p], c.get(op.proc)});
            }
        }
        // FastTrack collapses the read vector after a write.
        l.sharedReads = false;
        l.readVec.clear();
        l.readPcVec.clear();
        l.read = {};
    } else if (l.read.valid() && l.read.proc != op.proc) {
        ++stats_.epochChecks;
        if (!c.epochLeq(l.read.proc, l.read.ts)) {
            report({l.read.proc, l.read.pc, op.proc, op.pc, op.addr,
                    op.id, l.read.ts, c.get(op.proc)});
        }
        l.read = {};
    }

    l.write = {op.proc, c.get(op.proc), op.pc};
}

} // namespace wmr
