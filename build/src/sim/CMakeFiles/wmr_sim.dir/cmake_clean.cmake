file(REMOVE_RECURSE
  "CMakeFiles/wmr_sim.dir/exec_stats.cc.o"
  "CMakeFiles/wmr_sim.dir/exec_stats.cc.o.d"
  "CMakeFiles/wmr_sim.dir/executor.cc.o"
  "CMakeFiles/wmr_sim.dir/executor.cc.o.d"
  "CMakeFiles/wmr_sim.dir/invalidate_model.cc.o"
  "CMakeFiles/wmr_sim.dir/invalidate_model.cc.o.d"
  "CMakeFiles/wmr_sim.dir/scheduler.cc.o"
  "CMakeFiles/wmr_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/wmr_sim.dir/store_buffer_model.cc.o"
  "CMakeFiles/wmr_sim.dir/store_buffer_model.cc.o.d"
  "libwmr_sim.a"
  "libwmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
