/**
 * @file
 * Enumeration of the races of a traced execution.
 *
 * Candidate pairs are generated per address (only events whose
 * READ/WRITE sets or sync operation touch a common word can race),
 * filtered by processor (same-processor events are always po-ordered)
 * and then by the hb1 reachability oracle.
 */

#ifndef WMR_DETECT_RACE_FINDER_HH
#define WMR_DETECT_RACE_FINDER_HH

#include <vector>

#include "detect/race.hh"
#include "hb/reachability.hh"
#include "trace/execution_trace.hh"

namespace wmr {

/** Options of the race enumeration. */
struct RaceFinderOptions
{
    /**
     * Also report sync-sync conflicting unordered pairs (general
     * races that are NOT data races, Def. 2.4).  Off by default; the
     * paper's method reports data races.
     */
    bool includeSyncSyncRaces = false;
};

/**
 * Enumerate the races of @p trace under the hb1 order @p reach.
 * Pairs are deduplicated across addresses; each returned race lists
 * every conflicting location of its event pair.
 */
std::vector<DataRace> findRaces(const ExecutionTrace &trace,
                                const ReachabilityIndex &reach,
                                const RaceFinderOptions &opts = {});

} // namespace wmr

#endif // WMR_DETECT_RACE_FINDER_HH
