/**
 * @file
 * Shared helpers for the benchmark/reproduction binaries.
 *
 * Every bench binary follows the same shape: main() first prints the
 * reproduced figure/claim as a plain-text table (the "reproduction"
 * part), then hands over to google-benchmark for the timing part.
 */

#ifndef WMR_BENCH_BENCH_UTIL_HH
#define WMR_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"

namespace wmr::benchutil {

/**
 * WMR_BENCH_SMOKE=1 shrinks a bench's workload so the binary doubles
 * as a fast CTest smoke entry (guards the reproduction tables and
 * their claims against bit-rot without paying full bench time).
 */
inline bool
smokeMode()
{
    const char *env = std::getenv("WMR_BENCH_SMOKE");
    return env != nullptr && *env != '\0' &&
           std::strcmp(env, "0") != 0;
}

/** Print a section header. */
inline void
section(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Print a sub-note line. */
inline void
note(const std::string &text)
{
    std::printf("    %s\n", text.c_str());
}

/**
 * Standard bench main body: print the reproduction, then run the
 * registered google-benchmark timings.
 */
inline int
runBenchMain(int argc, char **argv, void (*reproduce)())
{
    setQuiet(true);
    reproduce();
    std::printf("\n--- timings (google-benchmark) ---\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace wmr::benchutil

/** Define the standard main for a bench binary. */
#define WMR_BENCH_MAIN(reproduceFn)                                     \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        return ::wmr::benchutil::runBenchMain(argc, argv,               \
                                              (reproduceFn));           \
    }

#endif // WMR_BENCH_BENCH_UTIL_HH
