file(REMOVE_RECURSE
  "libwmr_staticdet.a"
)
