/**
 * @file
 * Strongly connected components of a directed graph.
 *
 * Section 4.2 partitions data races by the strongly connected
 * components of the augmented graph G'.  We implement Tarjan's
 * algorithm iteratively (no recursion — augmented graphs of large
 * executions can be deep) over a plain adjacency-list graph.
 */

#ifndef WMR_HB_SCC_HH
#define WMR_HB_SCC_HH

#include <cstdint>
#include <vector>

namespace wmr {

/** Adjacency-list digraph over nodes 0..n-1. */
using AdjList = std::vector<std::vector<std::uint32_t>>;

/** Result of an SCC decomposition. */
struct SccResult
{
    /** componentOf[v] = id of v's component, in REVERSE topological
     *  order of the condensation (Tarjan property: an edge u→v across
     *  components satisfies componentOf[u] > componentOf[v]). */
    std::vector<std::uint32_t> componentOf;

    /** Number of components. */
    std::uint32_t numComponents = 0;

    /** members[c] = nodes of component c. */
    std::vector<std::vector<std::uint32_t>> members;

    /**
     * Condensation DAG: edges between distinct components, deduped.
     * condensation[c] lists successors of component c.
     */
    AdjList condensation;
};

/** Decompose @p graph into strongly connected components. */
SccResult stronglyConnectedComponents(const AdjList &graph);

} // namespace wmr

#endif // WMR_HB_SCC_HH
