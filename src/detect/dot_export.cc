#include "detect/dot_export.hh"

#include <fstream>

#include "common/logging.hh"
#include "common/string_util.hh"

namespace wmr {

namespace {

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
eventLabel(const Event &ev, const Program *prog)
{
    if (ev.kind == EventKind::Sync) {
        const char *what = ev.syncOp.kind == OpKind::Write
                               ? (ev.syncOp.release ? "Release"
                                                    : "SyncW")
                               : (ev.syncOp.acquire ? "Acquire"
                                                    : "SyncR");
        const std::string addr =
            prog ? prog->addrName(ev.syncOp.addr)
                 : strformat("[%u]", ev.syncOp.addr);
        return strformat("E%u %s(%s)", ev.id, what, addr.c_str());
    }
    std::string rw;
    std::size_t shown = 0;
    ev.readSet.forEach([&](std::size_t a) {
        if (shown++ < 3) {
            rw += "R" + (prog ? prog->addrName(static_cast<Addr>(a))
                              : strformat("[%zu]", a)) +
                  " ";
        }
    });
    shown = 0;
    ev.writeSet.forEach([&](std::size_t a) {
        if (shown++ < 3) {
            rw += "W" + (prog ? prog->addrName(static_cast<Addr>(a))
                              : strformat("[%zu]", a)) +
                  " ";
        }
    });
    return strformat("E%u comp(%u ops)\\n%s", ev.id, ev.opCount,
                     escape(rw).c_str());
}

const char *
fillFor(ScpMembership m)
{
    switch (m) {
      case ScpMembership::Full: return "#d4edd4";    // green: in SCP
      case ScpMembership::Partial: return "#fff3c4"; // amber: boundary
      case ScpMembership::Outside: return "#f4d3d3"; // red: diverged
    }
    return "#ffffff";
}

} // namespace

std::string
toDot(const DetectionResult &result, const Program *prog,
      const DotOptions &opts)
{
    const auto &trace = result.trace();
    std::string out = "digraph hb1 {\n"
                      "  rankdir=TB;\n"
                      "  node [shape=box, style=filled, "
                      "fontname=\"Helvetica\", fontsize=10];\n"
                      "  edge [fontname=\"Helvetica\", fontsize=9];\n";

    // Nodes, grouped into per-processor clusters like the paper's
    // column layout.
    for (ProcId p = 0; p < trace.numProcs(); ++p) {
        if (opts.processorColumns) {
            out += strformat("  subgraph cluster_p%u {\n"
                             "    label=\"P%u\";\n",
                             p, p + 1);
        }
        for (const EventId e : trace.procEvents(p)) {
            const Event &ev = trace.event(e);
            const char *fill =
                opts.shadeScp ? fillFor(result.scp().membership(e))
                              : "#ffffff";
            const char *shape =
                ev.kind == EventKind::Sync ? "ellipse" : "box";
            out += strformat(
                "    e%u [label=\"%s\", shape=%s, fillcolor=\"%s\"];"
                "\n",
                e, eventLabel(ev, prog).c_str(), shape, fill);
        }
        if (opts.processorColumns)
            out += "  }\n";
    }

    // po and so1 edges.
    for (const auto &edge : result.hbGraph().edges()) {
        if (edge.kind == HbEdgeKind::ProgramOrder) {
            out += strformat("  e%u -> e%u [label=\"po\"];\n",
                             edge.from, edge.to);
        } else {
            out += strformat("  e%u -> e%u [label=\"so1\", "
                             "style=dashed, color=blue, "
                             "constraint=false];\n",
                             edge.from, edge.to);
        }
    }

    // Race edges: doubly directed; red when in a first partition,
    // orange otherwise (Figure 3's first / non-first distinction).
    if (opts.showRaceEdges) {
        const auto &parts = result.partitions();
        for (RaceId r = 0;
             r < static_cast<RaceId>(result.races().size()); ++r) {
            const auto &race = result.races()[r];
            const bool first =
                parts.partitions[parts.partitionOf[r]].first;
            out += strformat(
                "  e%u -> e%u [dir=both, color=%s, penwidth=%s, "
                "label=\"race %u%s\", constraint=false];\n",
                race.a, race.b, first ? "red" : "orange",
                first ? "2.0" : "1.0", r, first ? " (FIRST)" : "");
        }
    }

    out += "}\n";
    return out;
}

void
writeDotFile(const DetectionResult &result, const std::string &path,
             const Program *prog, const DotOptions &opts)
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        fatal("cannot open dot file '%s'", path.c_str());
    f << toDot(result, prog, opts);
    if (!f)
        fatal("short write to dot file '%s'", path.c_str());
}

} // namespace wmr
