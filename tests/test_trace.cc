/**
 * @file
 * Unit tests of the trace layer: event construction (Section 4.1),
 * READ/WRITE sets, so1 pairing, and trace file round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "prog/builder.hh"
#include "sim/executor.hh"
#include "trace/execution_trace.hh"
#include "trace/trace_io.hh"
#include "workload/patterns.hh"

namespace wmr {
namespace {

ExecutionResult
runFig1b()
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 3;
    return runProgram(figure1b(), opts);
}

TEST(Events, ComputationEventsGroupConsecutiveDataOps)
{
    // P1 of figure 1b: two data writes then an Unset -> one
    // computation event then one sync event.
    const auto res = runFig1b();
    const auto trace = buildTrace(res);
    const auto &p1 = trace.procEvents(0);
    ASSERT_GE(p1.size(), 2u);
    EXPECT_EQ(trace.event(p1[0]).kind, EventKind::Computation);
    EXPECT_EQ(trace.event(p1[0]).opCount, 2u);
    EXPECT_EQ(trace.event(p1[1]).kind, EventKind::Sync);
    EXPECT_TRUE(trace.event(p1[1]).syncOp.release);
}

TEST(Events, ReadWriteSetsAreExact)
{
    const auto res = runFig1b();
    const auto trace = buildTrace(res);
    const Event &comp = trace.event(trace.procEvents(0)[0]);
    EXPECT_TRUE(comp.writeSet.test(0)); // x
    EXPECT_TRUE(comp.writeSet.test(1)); // y
    EXPECT_TRUE(comp.readSet.empty());
    EXPECT_TRUE(comp.writes(0));
    EXPECT_FALSE(comp.reads(0));
}

TEST(Events, SyncEventsCarryTheirOp)
{
    const auto res = runFig1b();
    const auto trace = buildTrace(res);
    // Sync order on the lock location (addr 2) is recorded.
    const auto it = trace.syncOrder().find(2);
    ASSERT_NE(it, trace.syncOrder().end());
    EXPECT_GE(it->second.size(), 3u); // >=1 tas pair + unset
}

TEST(Events, So1PairingResolvesReleaseToAcquire)
{
    const auto res = runFig1b();
    const auto trace = buildTrace(res);
    // Find the successful tas acquire (read of value 0).
    EventId acquire = kNoEvent;
    EventId release = kNoEvent;
    for (const auto &ev : trace.events()) {
        if (ev.kind != EventKind::Sync)
            continue;
        if (ev.syncOp.acquire && ev.syncOp.value == 0)
            acquire = ev.id;
        if (ev.syncOp.release)
            release = ev.id;
    }
    ASSERT_NE(acquire, kNoEvent);
    ASSERT_NE(release, kNoEvent);
    EXPECT_EQ(trace.event(acquire).pairedRelease, release);
}

TEST(Events, FailedTasDoesNotPair)
{
    // A tas that read 1 (lock busy) observed a non-release write (or
    // the initial image) and must not create an so1 edge.
    const auto res = runFig1b();
    const auto trace = buildTrace(res);
    for (const auto &ev : trace.events()) {
        if (ev.kind == EventKind::Sync && ev.syncOp.acquire &&
            ev.syncOp.value != 0) {
            EXPECT_EQ(ev.pairedRelease, kNoEvent);
        }
    }
}

TEST(Events, MemberOpsRetainedWhenRequested)
{
    const auto res = runFig1b();
    const auto with = buildTrace(res, {.keepMemberOps = true});
    const auto without = buildTrace(res, {.keepMemberOps = false});
    const Event &a = with.event(with.procEvents(0)[0]);
    const Event &b = without.event(without.procEvents(0)[0]);
    EXPECT_EQ(a.memberOps.size(), 2u);
    EXPECT_TRUE(b.memberOps.empty());
    EXPECT_EQ(a.opCount, b.opCount);
}

TEST(Events, MaxCompRunSplitsEvents)
{
    ThreadBuilder t;
    for (Addr a = 0; a < 10; ++a)
        t.storei(a, 1);
    t.halt();
    ProgramBuilder pb;
    pb.thread(t);
    const auto res = runProgram(pb.build());
    const auto trace = buildTrace(res, {.maxCompRun = 3});
    EXPECT_EQ(trace.procEvents(0).size(), 4u); // 3+3+3+1
}

TEST(Events, StaleReadCarriedIntoTrace)
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.drainLaziness = 1.0;
    // Find a seed with a stale read in figure 1a.
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        opts.seed = seed;
        const auto res = runProgram(figure1a(), opts);
        if (res.firstStaleRead != kNoOp) {
            const auto trace = buildTrace(res);
            EXPECT_EQ(trace.firstStaleRead(), res.firstStaleRead);
            return;
        }
    }
    FAIL() << "no stale seed found";
}

TEST(Events, IndexInProcAndPoOrder)
{
    const auto res = runFig1b();
    const auto trace = buildTrace(res);
    for (ProcId p = 0; p < trace.numProcs(); ++p) {
        const auto &seq = trace.procEvents(p);
        for (std::size_t i = 0; i < seq.size(); ++i) {
            EXPECT_EQ(trace.event(seq[i]).indexInProc, i);
            EXPECT_EQ(trace.event(seq[i]).proc, p);
            if (i > 0) {
                EXPECT_LT(trace.event(seq[i - 1]).lastOp,
                          trace.event(seq[i]).firstOp);
            }
        }
    }
}

TEST(EventConflicts, ComputationVsComputation)
{
    Event a, b;
    a.kind = b.kind = EventKind::Computation;
    a.writeSet.set(3);
    b.readSet.set(3);
    EXPECT_TRUE(eventsConflict(a, b));
    EXPECT_EQ(conflictAddrs(a, b), std::vector<Addr>{3});
    b.readSet.reset(3);
    b.readSet.set(4);
    EXPECT_FALSE(eventsConflict(a, b));
}

TEST(EventConflicts, ReadReadDoesNotConflict)
{
    Event a, b;
    a.kind = b.kind = EventKind::Computation;
    a.readSet.set(3);
    b.readSet.set(3);
    EXPECT_FALSE(eventsConflict(a, b));
}

TEST(EventConflicts, SyncVsComputation)
{
    Event s, c;
    s.kind = EventKind::Sync;
    s.syncOp.kind = OpKind::Write;
    s.syncOp.addr = 5;
    c.kind = EventKind::Computation;
    c.readSet.set(5);
    EXPECT_TRUE(eventsConflict(s, c));
    EXPECT_TRUE(eventsConflict(c, s));
    // Sync read vs computation read: no conflict.
    s.syncOp.kind = OpKind::Read;
    EXPECT_FALSE(eventsConflict(s, c));
    c.writeSet.set(5);
    EXPECT_TRUE(eventsConflict(s, c));
}

TEST(TraceIo, SerializeRoundTrip)
{
    const auto res = runFig1b();
    const auto trace = buildTrace(res, {.keepMemberOps = true});
    const auto bytes = serializeTrace(trace);
    const auto back = deserializeTrace(bytes);

    ASSERT_EQ(back.events().size(), trace.events().size());
    EXPECT_EQ(back.numProcs(), trace.numProcs());
    EXPECT_EQ(back.memWords(), trace.memWords());
    EXPECT_EQ(back.firstStaleRead(), trace.firstStaleRead());
    EXPECT_EQ(back.totalOps(), trace.totalOps());
    for (std::size_t i = 0; i < trace.events().size(); ++i) {
        const Event &a = trace.events()[i];
        const Event &b = back.events()[i];
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.proc, b.proc);
        EXPECT_EQ(a.firstOp, b.firstOp);
        EXPECT_EQ(a.lastOp, b.lastOp);
        EXPECT_EQ(a.opCount, b.opCount);
        EXPECT_EQ(a.pairedRelease, b.pairedRelease);
        EXPECT_TRUE(a.readSet == b.readSet);
        EXPECT_TRUE(a.writeSet == b.writeSet);
        EXPECT_EQ(a.memberOps, b.memberOps);
        if (a.kind == EventKind::Sync) {
            EXPECT_EQ(a.syncOp.addr, b.syncOp.addr);
            EXPECT_EQ(a.syncOp.value, b.syncOp.value);
            EXPECT_EQ(a.syncOp.release, b.syncOp.release);
            EXPECT_EQ(a.syncOp.observedWrite, b.syncOp.observedWrite);
        }
    }
    // Sync order reconstructed identically.
    EXPECT_EQ(back.syncOrder(), trace.syncOrder());
}

TEST(TraceIo, FileRoundTrip)
{
    const auto res = runFig1b();
    const auto trace = buildTrace(res);
    const std::string path = "/tmp/wmr_test_trace.bin";
    const std::size_t bytes = writeTraceFile(trace, path);
    EXPECT_GT(bytes, 0u);
    const auto back = readTraceFile(path);
    EXPECT_EQ(back.events().size(), trace.events().size());
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsGarbage)
{
    std::vector<std::uint8_t> junk{'n', 'o', 't', 'a', 't', 'r',
                                   'c', '!'};
    EXPECT_EXIT(deserializeTrace(junk), ::testing::ExitedWithCode(1),
                "unrecognized magic");
}

TEST(TraceIo, RejectsTruncation)
{
    const auto res = runFig1b();
    auto bytes = serializeTrace(buildTrace(res));
    bytes.resize(bytes.size() / 2);
    EXPECT_EXIT(deserializeTrace(bytes), ::testing::ExitedWithCode(1),
                "truncated");
}

// --- Magic sniffing: each container names itself precisely -------
//
// tryDeserializeTrace()'s error for a wrong-format or garbage header
// must say WHICH magic was found (and escape unprintable bytes), so
// a misrouted upload to `wmrace serve` or a mis-fed batch corpus
// diagnoses itself from the error string alone.

TEST(TraceIoMagic, ShortInputNamesItsLength)
{
    const std::vector<std::uint8_t> tiny{'W', 'M', 'R'};
    const auto res = tryDeserializeTrace(tiny);
    EXPECT_EQ(res.status, TraceIoStatus::FormatError);
    EXPECT_NE(res.error.find("3 byte(s) is shorter than any "
                             "wmrace container header"),
              std::string::npos)
        << res.error;
}

TEST(TraceIoMagic, FullOpMagicIsCrossReferenced)
{
    std::vector<std::uint8_t> bytes{'W', 'M', 'R', 'F',
                                    'O', 'P', '0', '1'};
    const auto res = tryDeserializeTrace(bytes);
    EXPECT_EQ(res.status, TraceIoStatus::FormatError);
    EXPECT_NE(res.error.find("full-op file (WMRFOP01)"),
              std::string::npos)
        << res.error;
}

TEST(TraceIoMagic, UnrecognizedMagicIsQuoted)
{
    std::vector<std::uint8_t> bytes{'N', 'O', 'T', 'A',
                                    'T', 'R', 'C', '!'};
    const auto res = tryDeserializeTrace(bytes);
    EXPECT_EQ(res.status, TraceIoStatus::FormatError);
    EXPECT_NE(res.error.find("unrecognized magic \"NOTATRC!\""),
              std::string::npos)
        << res.error;
    EXPECT_NE(res.error.find("WMRTRC01, WMRSEG01 or WMRFOP01"),
              std::string::npos)
        << res.error;
}

TEST(TraceIoMagic, UnprintableMagicBytesAreEscaped)
{
    std::vector<std::uint8_t> bytes(16, 0x01);
    const auto res = tryDeserializeTrace(bytes);
    EXPECT_EQ(res.status, TraceIoStatus::FormatError);
    EXPECT_NE(res.error.find("\\x01"), std::string::npos)
        << res.error;
}

TEST(TraceIoMagic, FullOpReaderCrossReferencesEventMagic)
{
    // The reverse direction: event-format bytes fed to the full-op
    // reader name the event container rather than "bad magic".
    const auto res = runFig1b();
    const auto bytes = serializeTrace(buildTrace(res));
    const auto parsed = tryDeserializeFullOps(bytes);
    EXPECT_EQ(parsed.status, TraceIoStatus::FormatError);
    EXPECT_NE(parsed.error.find("event-format trace"),
              std::string::npos)
        << parsed.error;
}

TEST(TraceIo, FullOpFormatIsLargerThanEventFormat)
{
    // The point of Section 4.1's bit-vector events: tracing every
    // operation costs (much) more than tracing events.
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 1;
    const auto res = runProgram(figure2Queue({.regionSize = 64}), opts);
    const auto eventBytes =
        serializeTrace(buildTrace(res)).size();
    const auto fullBytes = serializeFullOps(res.ops).size();
    EXPECT_GT(fullBytes, eventBytes);
}

} // namespace
} // namespace wmr
