#include "detect/robustness.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "obs/obs.hh"

namespace wmr {

namespace {

using EdgeKind = RobustnessEdge::Kind;

/**
 * The constraint graph po u rf u co u fr over the ops with
 * id <= limit.  co/fr are rebuilt from the visibility witness
 * restricted to the prefix, so a prefix graph is exactly the graph
 * of the truncated execution (cyclicity is monotone in the prefix:
 * po/rf edges persist and co/fr chain refinements only add
 * reachability, which is what makes the first-violation binary
 * search below sound).
 */
struct Graph
{
    std::size_t n = 0;
    std::vector<std::vector<RobustnessEdge>> out;
    std::size_t edges = 0;

    void
    add(OpId from, OpId to, EdgeKind kind)
    {
        if (from == to)
            return;
        out[from].push_back({from, to, kind});
        ++edges;
    }
};

Graph
buildGraph(const std::vector<MemOp> &ops,
           const std::vector<OpId> &visibility, OpId limit)
{
    Graph g;
    g.n = static_cast<std::size_t>(limit) + 1;
    g.out.resize(g.n);

    // po: chain each processor's ops in issue order.
    std::vector<OpId> lastOfProc;
    for (OpId id = 0; id < g.n; ++id) {
        const MemOp &op = ops[id];
        if (op.proc >= lastOfProc.size())
            lastOfProc.resize(op.proc + 1, kNoOp);
        if (lastOfProc[op.proc] != kNoOp)
            g.add(lastOfProc[op.proc], id, EdgeKind::Po);
        lastOfProc[op.proc] = id;

        // rf: the observed write precedes the read.
        if (op.kind == OpKind::Read && op.observedWrite != kNoOp)
            g.add(op.observedWrite, id, EdgeKind::Rf);
    }

    // co: chain the visibility witness per address, restricted to
    // the prefix; writes the witness missed (possible only on
    // truncated streams) are appended in issue order.
    std::vector<bool> witnessed(g.n, false);
    std::vector<OpId> vis;
    vis.reserve(g.n);
    for (const OpId id : visibility) {
        if (id < g.n && !witnessed[id]) {
            witnessed[id] = true;
            vis.push_back(id);
        }
    }
    for (OpId id = 0; id < g.n; ++id) {
        if (ops[id].kind == OpKind::Write && !witnessed[id])
            vis.push_back(id);
    }

    // coSucc[w]: the next write to w's address in co order.
    std::vector<OpId> coSucc(g.n, kNoOp);
    std::vector<OpId> lastOfAddr;   // last co write per address
    std::vector<OpId> firstOfAddr;  // first co write per address
    const auto addrSlot = [&](Addr a) -> std::size_t {
        if (a >= lastOfAddr.size()) {
            lastOfAddr.resize(a + 1, kNoOp);
            firstOfAddr.resize(a + 1, kNoOp);
        }
        return a;
    };
    for (const OpId id : vis) {
        const std::size_t a = addrSlot(ops[id].addr);
        if (lastOfAddr[a] != kNoOp) {
            g.add(lastOfAddr[a], id, EdgeKind::Co);
            coSucc[lastOfAddr[a]] = id;
        } else {
            firstOfAddr[a] = id;
        }
        lastOfAddr[a] = id;
    }

    // fr: a read precedes the write that co-overwrites what it saw.
    for (OpId id = 0; id < g.n; ++id) {
        const MemOp &op = ops[id];
        if (op.kind != OpKind::Read)
            continue;
        OpId succ = kNoOp;
        if (op.observedWrite == kNoOp) {
            // Initial value: every co write to the address overwrites.
            if (op.addr < firstOfAddr.size())
                succ = firstOfAddr[op.addr];
        } else if (op.observedWrite < g.n) {
            succ = coSucc[op.observedWrite];
        }
        if (succ != kNoOp)
            g.add(id, succ, EdgeKind::Fr);
    }
    return g;
}

/** Kahn's algorithm: @return whether @p g is acyclic. */
bool
acyclic(const Graph &g)
{
    std::vector<std::uint32_t> indeg(g.n, 0);
    for (const auto &adj : g.out) {
        for (const auto &e : adj)
            ++indeg[e.to];
    }
    std::vector<OpId> work;
    work.reserve(g.n);
    for (OpId id = 0; id < g.n; ++id) {
        if (indeg[id] == 0)
            work.push_back(id);
    }
    std::size_t seen = 0;
    while (!work.empty()) {
        const OpId id = work.back();
        work.pop_back();
        ++seen;
        for (const auto &e : g.out[id]) {
            if (--indeg[e.to] == 0)
                work.push_back(e.to);
        }
    }
    return seen == g.n;
}

/** Extract one cycle from a graph known to be cyclic. */
std::vector<RobustnessEdge>
findCycle(const Graph &g)
{
    enum : std::uint8_t { White, Grey, Black };
    std::vector<std::uint8_t> color(g.n, White);
    // DFS stack: node plus index of the next out-edge to try.
    std::vector<std::pair<OpId, std::size_t>> stack;

    for (OpId root = 0; root < g.n; ++root) {
        if (color[root] != White)
            continue;
        stack.push_back({root, 0});
        color[root] = Grey;
        while (!stack.empty()) {
            auto &[id, next] = stack.back();
            if (next < g.out[id].size()) {
                const RobustnessEdge &e = g.out[id][next++];
                if (color[e.to] == Grey) {
                    // Back edge: the grey stack from e.to to id plus
                    // this edge is the cycle.
                    std::vector<RobustnessEdge> cycle;
                    std::size_t start = 0;
                    for (std::size_t i = 0; i < stack.size(); ++i) {
                        if (stack[i].first == e.to)
                            start = i;
                    }
                    for (std::size_t i = start + 1; i < stack.size();
                         ++i) {
                        const OpId from = stack[i - 1].first;
                        for (const auto &edge : g.out[from]) {
                            if (edge.to == stack[i].first) {
                                cycle.push_back(edge);
                                break;
                            }
                        }
                    }
                    cycle.push_back(e);
                    return cycle;
                }
                if (color[e.to] == White) {
                    color[e.to] = Grey;
                    stack.push_back({e.to, 0});
                }
            } else {
                color[id] = Black;
                stack.pop_back();
            }
        }
    }
    panic("findCycle: graph is acyclic");
}

} // namespace

std::string_view
robustnessEdgeName(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::Po: return "po";
      case EdgeKind::Rf: return "rf";
      case EdgeKind::Co: return "co";
      case EdgeKind::Fr: return "fr";
    }
    panic("robustnessEdgeName: bad kind %d", static_cast<int>(kind));
}

RobustnessResult
checkRobustness(const std::vector<MemOp> &ops,
                const std::vector<OpId> &visibilityOrder)
{
    static obs::Counter cChecks = obs::counter("robustness.checks");
    static obs::Counter cViolations =
        obs::counter("robustness.violations");
    static obs::Counter cOps = obs::counter("robustness.ops");
    obs::Span span("robustness.check");
    cChecks.inc();
    cOps.add(ops.size());

    RobustnessResult res;
    if (ops.empty())
        return res;

    const OpId last = static_cast<OpId>(ops.size() - 1);
    const Graph full = buildGraph(ops, visibilityOrder, last);
    res.nodes = full.n;
    res.edges = full.edges;
    if (acyclic(full))
        return res;

    // Not robust: binary-search the shortest cyclic prefix.  The
    // smallest limit whose graph is cyclic identifies the first
    // operation no SC order can accommodate.
    OpId lo = 0;
    OpId hi = last;
    while (lo < hi) {
        const OpId mid = lo + (hi - lo) / 2;
        if (acyclic(buildGraph(ops, visibilityOrder, mid)))
            lo = mid + 1;
        else
            hi = mid;
    }
    res.robust = false;
    res.violatingOp = lo;
    res.cycle = findCycle(buildGraph(ops, visibilityOrder, lo));
    cViolations.inc();
    return res;
}

RobustnessResult
checkRobustness(const ExecutionResult &res)
{
    return checkRobustness(res.ops, res.visibilityOrder);
}

namespace {

std::string
opText(const std::vector<MemOp> &ops, OpId id)
{
    if (id >= ops.size())
        return strformat("#%llu", static_cast<unsigned long long>(id));
    const MemOp &op = ops[id];
    return strformat("#%llu P%u %s%s [%llu]=%lld",
                     static_cast<unsigned long long>(id), op.proc,
                     op.sync ? "sync " : "",
                     op.kind == OpKind::Read ? "read" : "write",
                     static_cast<unsigned long long>(op.addr),
                     static_cast<long long>(op.value));
}

} // namespace

std::string
formatRobustnessReport(const RobustnessResult &r,
                       const std::vector<MemOp> &ops)
{
    if (r.robust) {
        return strformat("robustness: ROBUST — the execution has a "
                         "sequentially consistent equivalent "
                         "(%zu ops, %zu constraint edges)\n",
                         r.nodes, r.edges);
    }
    std::string text = strformat(
        "robustness: VIOLATION — no sequentially consistent "
        "equivalent exists\n  first non-SC operation: %s\n"
        "  witness cycle (po u rf u co u fr):\n",
        opText(ops, r.violatingOp).c_str());
    for (const auto &e : r.cycle) {
        text += strformat("    %s  --%s-->  %s\n",
                          opText(ops, e.from).c_str(),
                          std::string(robustnessEdgeName(e.kind))
                              .c_str(),
                          opText(ops, e.to).c_str());
    }
    return text;
}

} // namespace wmr
