# Empty dependencies file for test_lockset.
# This may be replaced when dependencies are built.
