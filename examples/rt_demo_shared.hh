/**
 * @file
 * Shared harness of the two runtime-tracer demos (rt_demo_racy,
 * rt_demo_racefree).
 *
 * The workload is a miniature bank: two worker threads make deposits
 * into one account under a real std::mutex and log each deposit into
 * a small history array.  Both demos are NATIVELY well-synchronized
 * (the mutex is always held — ThreadSanitizer finds nothing), but
 * they differ in what they tell the tracer:
 *
 *  - rt_demo_racefree annotates the mutex (acquire/release), so the
 *    recorded trace carries the so1 edges that order the deposits;
 *  - rt_demo_racy omits the mutex annotations — the classic "missed
 *    synchronization" bug, seen from the detector's side: the trace
 *    says the deposits are concurrent, and the analysis must report
 *    the (annotation-level) data race on the account.
 *
 * That construction is what lets the rt_demo_tsan CTest entry assert
 * two things at once: the tracer itself is TSan-clean, and the
 * seeded race is still reported.
 *
 * Modes:
 *   rt_demo_X [out.trace]   record an EVENT trace file (default
 *                           name per demo); analyze it with
 *                           `wmrace check out.trace`
 *   rt_demo_X --inline      no file: inline on-the-fly detection
 *   rt_demo_X --fail        exit with status 9 after the workload
 *                           (exercises `wmrace record`'s handling of
 *                           nonzero children: report, keep trace)
 * When WMR_RT_TRACE / WMR_RT_MODE are set (e.g. by `wmrace
 * record`), the environment wins and configures the tracer instead.
 */

#ifndef WMR_EXAMPLES_RT_DEMO_SHARED_HH
#define WMR_EXAMPLES_RT_DEMO_SHARED_HH

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>

#include "rt/annotate.hh"
#include "rt/thread.hh"

namespace rtdemo {

struct Account
{
    std::mutex mu;
    std::uint64_t balance = 0;
    std::uint64_t history[4] = {0, 0, 0, 0};
};

constexpr int kWorkers = 2;
constexpr int kDepositsPerWorker = 4;

/** One worker: deposit under the real mutex; annotate the mutex
 *  only when @p annotateLocks (the race-free demo). */
inline void
depositLoop(Account &acct, bool annotateLocks)
{
    for (int i = 0; i < kDepositsPerWorker; ++i) {
        std::lock_guard<std::mutex> lock(acct.mu);
        std::optional<wmr::rt::ScopedSync> sync;
        if (annotateLocks)
            sync.emplace(&acct.mu);

        wmr_rt_read(&acct.balance, sizeof(acct.balance));
        const std::uint64_t v = acct.balance;
        wmr_rt_write(&acct.balance, sizeof(acct.balance));
        acct.balance = v + 10;

        wmr_rt_write(&acct.history[v % 4],
                     sizeof(acct.history[0]));
        acct.history[v % 4] += 1;
    }
}

inline void
runWorkload(bool annotateLocks)
{
    Account acct;
    {
        wmr::rt::Thread w1(depositLoop, std::ref(acct),
                           annotateLocks);
        wmr::rt::Thread w2(depositLoop, std::ref(acct),
                           annotateLocks);
    } // joined (and join-annotated) here
    std::printf("final balance: %llu\n",
                static_cast<unsigned long long>(acct.balance));
}

/** Common main: tracer setup, workload, report.  @return exit code. */
inline int
demoMain(int argc, char **argv, bool annotateLocks,
         const char *defaultTrace)
{
    using namespace wmr::rt;

    bool inlineMode = false;
    bool failExit = false;
    std::string out = defaultTrace;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--inline")
            inlineMode = true;
        else if (a == "--fail")
            failExit = true;
        else
            out = a;
    }

    // `wmrace record` (or any WMR_RT_* environment) configures the
    // global tracer lazily; only start one ourselves otherwise.
    const bool envDriven = std::getenv("WMR_RT_TRACE") != nullptr ||
                           std::getenv("WMR_RT_MODE") != nullptr;
    Tracer *tracer = nullptr;
    if (!envDriven) {
        TracerConfig cfg;
        cfg.mode = inlineMode ? RtMode::Inline : RtMode::Record;
        if (!inlineMode)
            cfg.tracePath = out;
        tracer = &startGlobalTracer(cfg);
    }

    wmr_rt_thread_begin();
    runWorkload(annotateLocks);
    wmr_rt_thread_end();

    if (envDriven)
        return failExit ? 9 : 0; // the atexit hook still flushes

    tracer->stop();
    const RtStats s = tracer->stats();
    int rc = 0;
    if (inlineMode) {
        const auto races = tracer->inlineRaces();
        std::printf("inline detection: %zu data race report(s) "
                    "over %llu ops\n",
                    races.size(),
                    static_cast<unsigned long long>(s.opsEmitted));
        for (const auto &rr : races) {
            std::printf("  data race on %p (word %u): T%u:op%u "
                        "<-> T%u:op%u\n",
                        rr.nativeAddr, rr.race.addr, rr.race.proc1,
                        rr.race.pc1, rr.race.proc2, rr.race.pc2);
        }
        rc = races.empty() ? 0 : 1;
    } else {
        std::printf("recorded %llu events (%llu sync) over %llu "
                    "ops from %llu threads -> %s\n",
                    static_cast<unsigned long long>(s.eventsEmitted),
                    static_cast<unsigned long long>(s.syncEvents),
                    static_cast<unsigned long long>(s.opsEmitted),
                    static_cast<unsigned long long>(
                        s.threadsTraced),
                    out.c_str());
        std::printf("analyze with: wmrace check %s\n", out.c_str());
    }
    if (s.recordsDropped != 0) {
        std::printf("warning: %llu records dropped (ring "
                    "overflow)\n",
                    static_cast<unsigned long long>(
                        s.recordsDropped));
    }
    stopGlobalTracer();
    return failExit ? 9 : rc;
}

} // namespace rtdemo

#endif // WMR_EXAMPLES_RT_DEMO_SHARED_HH
