/**
 * @file
 * Throughput scaling of the batch analysis pipeline (src/pipeline):
 * the same trace corpus analyzed with 1 -> N worker threads.
 *
 * The per-trace analysis (hb1 graph -> G' -> partitions) is
 * share-nothing, so the corpus should scale until memory bandwidth or
 * core count intervenes; the reproduction table prints the measured
 * speedup over one thread.  The corpus is written to a temp directory
 * once and removed at exit.
 */

#include "bench_util.hh"

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "pipeline/aggregate_report.hh"
#include "pipeline/batch_runner.hh"
#include "sim/executor.hh"
#include "trace/trace_io.hh"
#include "workload/random_gen.hh"

#include <unistd.h>

namespace fs = std::filesystem;

namespace {

using namespace wmr;
using namespace wmr::benchutil;

/** Corpus size: small in smoke mode so CTest can afford the build. */
std::size_t
corpusTraces()
{
    return smokeMode() ? 4 : 24;
}

/** The corpus directory, created once and removed at process exit. */
class BenchCorpus
{
  public:
    BenchCorpus()
        : dir_(fs::temp_directory_path() /
               ("wmr_bench_batch." + std::to_string(::getpid())))
    {
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        for (std::size_t i = 0; i < corpusTraces(); ++i) {
            RandomProgConfig cfg;
            cfg.seed = 100 + i;
            cfg.procs = 6;
            cfg.blocksPerProc = smokeMode() ? 6 : 24;
            cfg.opsPerBlock = 10;
            cfg.dataWords = 96;
            cfg.numLocks = 8;
            cfg.unlockedProb = 0.05;
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = cfg.seed;
            opts.maxSteps = 10'000'000;
            const auto res = runProgram(randomProgram(cfg), opts);
            const auto trace =
                buildTrace(res, {.keepMemberOps = true});
            char name[32];
            std::snprintf(name, sizeof(name), "t%03zu.trace", i);
            writeTraceFile(trace, (dir_ / name).string());
        }
        scan_ = scanCorpus(dir_.string());
    }

    ~BenchCorpus() { fs::remove_all(dir_); }

    const CorpusScan &scan() const { return scan_; }

  private:
    fs::path dir_;
    CorpusScan scan_;
};

const CorpusScan &
corpus()
{
    static BenchCorpus instance;
    return instance.scan();
}

void
reproduce()
{
    section("batch pipeline thread scaling (" +
            std::to_string(corpusTraces()) + "-trace corpus)");
    const unsigned cores = std::thread::hardware_concurrency();
    note("hardware concurrency: " + std::to_string(cores) +
         " core(s) — speedup saturates there; on a single-core "
         "host expect ~1.0x");
    std::printf("  %-8s %12s %12s %10s %12s\n", "jobs", "wall ms",
                "traces/s", "speedup", "peak queue");

    double baseline = 0;
    std::string report1;
    bool identical = true;
    struct Row
    {
        unsigned jobs;
        double wall;
        double tracesPerSec;
    };
    std::vector<Row> rows;
    const std::vector<unsigned> jobCounts =
        smokeMode() ? std::vector<unsigned>{1u, 2u}
                    : std::vector<unsigned>{1u, 2u, 4u, 8u};
    const int reps = smokeMode() ? 1 : 3;
    for (const unsigned jobs : jobCounts) {
        BatchOptions opts;
        opts.jobs = jobs;
        // Best of 3 runs: the corpus is small enough that one
        // scheduler hiccup would otherwise dominate the table.
        double bestWall = 0;
        BatchResult best;
        for (int rep = 0; rep < reps; ++rep) {
            auto batch = runBatch(corpus(), opts);
            if (bestWall == 0 ||
                batch.metrics.wallSeconds < bestWall) {
                bestWall = batch.metrics.wallSeconds;
                best = std::move(batch);
            }
        }
        if (jobs == 1) {
            baseline = bestWall;
            report1 = formatBatchReport(best);
        } else if (formatBatchReport(best) != report1) {
            identical = false;
            note("!! report mismatch vs --jobs 1 (determinism "
                 "violation)");
        }
        std::printf("  %-8u %12.2f %12.1f %9.2fx %12zu\n", jobs,
                    bestWall * 1e3, best.metrics.tracesPerSecond(),
                    baseline / bestWall,
                    best.metrics.peakQueueDepth);
        rows.push_back(
            {jobs, bestWall, best.metrics.tracesPerSecond()});
    }
    note("aggregated report verified byte-identical across job "
         "counts;");
    note("speedup ceiling = min(cores, corpus traces) minus "
         "read/parse serial fraction.");

    // Machine-readable block for the committed BENCH_*.json
    // baselines (tools/bench_baselines.sh extracts it).
    std::printf("{\n  \"schema\": \"wmrace-batch-throughput\",\n");
    std::printf("  \"corpus_traces\": %zu,\n", corpusTraces());
    std::printf("  \"hardware_concurrency\": %u,\n", cores);
    std::printf("  \"reports_identical\": %s,\n",
                identical ? "true" : "false");
    std::printf("  \"results\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("    {\"jobs\": %u, \"wall_seconds\": %.6f, "
                    "\"traces_per_second\": %.1f, \"speedup\": "
                    "%.3f}%s\n",
                    rows[i].jobs, rows[i].wall, rows[i].tracesPerSec,
                    rows[0].wall / rows[i].wall,
                    i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
}

void
BM_BatchAnalyze(benchmark::State &state)
{
    BatchOptions opts;
    opts.jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto batch = runBatch(corpus(), opts);
        benchmark::DoNotOptimize(batch.metrics.analyzed);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(corpusTraces()));
}
BENCHMARK(BM_BatchAnalyze)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

WMR_BENCH_MAIN(reproduce)
