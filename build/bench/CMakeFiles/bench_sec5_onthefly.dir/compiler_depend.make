# Empty compiler generated dependencies file for bench_sec5_onthefly.
# This may be replaced when dependencies are built.
