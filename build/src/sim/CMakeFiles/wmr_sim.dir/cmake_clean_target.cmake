file(REMOVE_RECURSE
  "libwmr_sim.a"
)
