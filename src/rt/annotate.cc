#include "rt/annotate.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/logging.hh"

namespace wmr::rt {

namespace {

std::atomic<Tracer *> gTracer{nullptr};
std::unique_ptr<Tracer> gOwned;
std::mutex gMu;
bool gEnvChecked = false;

void
printExitSummary(Tracer &t)
{
    const RtStats s = t.stats();
    if (t.config().mode == RtMode::Record) {
        inform("wmr-rt: %llu events (%llu ops, %llu words, %llu "
               "threads) -> %s%s",
               static_cast<unsigned long long>(s.eventsEmitted),
               static_cast<unsigned long long>(s.opsEmitted),
               static_cast<unsigned long long>(s.wordsMapped),
               static_cast<unsigned long long>(s.threadsTraced),
               t.config().tracePath.empty()
                   ? "(memory only)"
                   : t.config().tracePath.c_str(),
               s.recordsDropped
                   ? "  [records dropped: ring overflow]"
                   : "");
    } else {
        inform("wmr-rt: inline detection: %llu race report(s) over "
               "%llu ops",
               static_cast<unsigned long long>(s.inlineRaces),
               static_cast<unsigned long long>(s.opsEmitted));
    }
}

void
atexitStop()
{
    stopGlobalTracer();
}

/** Build a TracerConfig from WMR_RT_* (nullopt-style: returns false
 *  when the environment requests no tracing). */
bool
configFromEnv(TracerConfig &cfg)
{
    const char *path = std::getenv("WMR_RT_TRACE");
    const char *mode = std::getenv("WMR_RT_MODE");
    if (!path && !mode)
        return false;
    if (mode && std::strcmp(mode, "inline") == 0)
        cfg.mode = RtMode::Inline;
    else
        cfg.mode = RtMode::Record;
    if (path)
        cfg.tracePath = path;
    if (const char *ring = std::getenv("WMR_RT_RING")) {
        const auto cap = std::strtoull(ring, nullptr, 10);
        if (cap >= 2 && (cap & (cap - 1)) == 0)
            cfg.ringCapacity = static_cast<std::size_t>(cap);
        else
            warn("wmr-rt: ignoring WMR_RT_RING='%s' (want a power "
                 "of two >= 2)", ring);
    }
    if (const char *pol = std::getenv("WMR_RT_OVERFLOW")) {
        if (std::strcmp(pol, "drop") == 0)
            cfg.overflow = RtOverflowPolicy::Drop;
        else if (std::strcmp(pol, "block") == 0)
            cfg.overflow = RtOverflowPolicy::Block;
        else
            warn("wmr-rt: ignoring WMR_RT_OVERFLOW='%s' (want "
                 "'drop' or 'block')", pol);
    }
    if (cfg.mode == RtMode::Record && !cfg.tracePath.empty()) {
        // Env-driven recording (i.e. a `wmrace record` child) gets
        // crash-resilient segmented spilling by default; a crashed
        // program then leaves a salvageable trace behind.
        cfg.spillSegmentBytes = 64 * 1024;
        cfg.crashHandlers = true;
        if (const char *spill = std::getenv("WMR_RT_SPILL")) {
            if (std::strcmp(spill, "off") == 0 ||
                std::strcmp(spill, "0") == 0) {
                cfg.spillSegmentBytes = 0;
                cfg.crashHandlers = false;
            } else {
                char *end = nullptr;
                const auto bytes =
                    std::strtoull(spill, &end, 10);
                if (end && *end == '\0' && bytes > 0)
                    cfg.spillSegmentBytes =
                        static_cast<std::size_t>(bytes);
                else
                    warn("wmr-rt: ignoring WMR_RT_SPILL='%s' "
                         "(want a byte count, '0' or 'off')",
                         spill);
            }
        }
    }
    if (const char *fault = std::getenv("WMR_RT_FAULT")) {
        // The legacy variable wins when both are set.
        cfg.faultSpec = fault;
    } else if (const char *unified = std::getenv("WMR_FAULT")) {
        // Unified form (docs/FAULTS.md): the tracer's sites live
        // under the "rt." prefix — WMR_FAULT=rt.slow-child@30 is
        // WMR_RT_FAULT=slow-child@30.  Scan the comma-separated list
        // for the first rt.* entry and strip the prefix; everything
        // else belongs to other subsystems' sites.
        std::string spec(unified);
        std::size_t start = 0;
        while (start <= spec.size()) {
            std::size_t comma = spec.find(',', start);
            if (comma == std::string::npos)
                comma = spec.size();
            const std::string entry =
                spec.substr(start, comma - start);
            if (entry.rfind("rt.", 0) == 0) {
                cfg.faultSpec = entry.substr(3);
                break;
            }
            start = comma + 1;
        }
    }
    return true;
}

/**
 * The tracer the annotation entry points talk to: the explicitly
 * started one, else (once) whatever the environment requests.
 */
Tracer *
activeTracer()
{
    Tracer *t = gTracer.load(std::memory_order_acquire);
    if (t)
        return t;
    std::lock_guard<std::mutex> lk(gMu);
    if (gEnvChecked)
        return gTracer.load(std::memory_order_relaxed);
    gEnvChecked = true;
    TracerConfig cfg;
    if (!configFromEnv(cfg))
        return nullptr;
    gOwned = std::make_unique<Tracer>(cfg);
    gTracer.store(gOwned.get(), std::memory_order_release);
    std::atexit(atexitStop);
    return gOwned.get();
}

} // namespace

Tracer &
startGlobalTracer(const TracerConfig &cfg)
{
    std::lock_guard<std::mutex> lk(gMu);
    if (gTracer.load(std::memory_order_relaxed))
        fatal("wmr-rt: a global tracer is already active");
    gEnvChecked = true; // explicit start overrides the environment
    gOwned = std::make_unique<Tracer>(cfg);
    gTracer.store(gOwned.get(), std::memory_order_release);
    return *gOwned;
}

void
stopGlobalTracer()
{
    std::unique_ptr<Tracer> dying;
    {
        std::lock_guard<std::mutex> lk(gMu);
        if (!gTracer.load(std::memory_order_relaxed))
            return;
        gTracer.store(nullptr, std::memory_order_release);
        dying = std::move(gOwned);
    }
    dying->stop();
    printExitSummary(*dying);
    if (dying->config().mode == RtMode::Inline) {
        for (const auto &rr : dying->inlineRaces()) {
            inform("wmr-rt: data race on %p: T%u:op%u <-> T%u:op%u",
                   rr.nativeAddr, rr.race.proc1, rr.race.pc1,
                   rr.race.proc2, rr.race.pc2);
        }
    }
}

Tracer *
globalTracer()
{
    return gTracer.load(std::memory_order_acquire);
}

} // namespace wmr::rt

// ---------------------------------------------------------------
// C entry points.
// ---------------------------------------------------------------

using wmr::rt::activeTracer;

extern "C" {

void
wmr_rt_thread_begin(void)
{
    if (auto *t = activeTracer())
        t->threadBegin();
}

void
wmr_rt_thread_end(void)
{
    if (auto *t = activeTracer())
        t->threadEnd();
}

void
wmr_rt_read(const void *addr, size_t size)
{
    if (auto *t = activeTracer())
        t->onData(addr, size, false);
}

void
wmr_rt_write(const void *addr, size_t size)
{
    if (auto *t = activeTracer())
        t->onData(addr, size, true);
}

void
wmr_rt_acquire(const void *sync)
{
    if (auto *t = activeTracer())
        t->onAcquire(sync);
}

void
wmr_rt_release(const void *sync)
{
    if (auto *t = activeTracer())
        t->onRelease(sync);
}

} // extern "C"
