/**
 * @file
 * Per-thread control-flow graphs over the IR.
 *
 * Section 1 of the paper: "Static techniques perform a compile-time
 * analysis of the program text to detect a superset of all possible
 * data races ... static analysis must be conservative".  The static
 * analyzer (static_analyzer.hh) needs a CFG per thread to run its
 * lockset dataflow; this module builds it.
 *
 * Nodes are instructions (one per pc); edges follow fall-through,
 * branch targets and jumps.  Halt (and running off the end) has no
 * successors.
 */

#ifndef WMR_STATICDET_CFG_HH
#define WMR_STATICDET_CFG_HH

#include <vector>

#include "prog/program.hh"

namespace wmr {

/** Control-flow graph of one thread. */
class Cfg
{
  public:
    /** Build the CFG of @p thread. */
    explicit Cfg(const Thread &thread);

    /** @return number of nodes (== instructions). */
    std::size_t size() const { return succ_.size(); }

    /** @return successor pcs of instruction @p pc. */
    const std::vector<std::uint32_t> &
    successors(std::uint32_t pc) const
    {
        return succ_.at(pc);
    }

    /** @return predecessor pcs of instruction @p pc. */
    const std::vector<std::uint32_t> &
    predecessors(std::uint32_t pc) const
    {
        return pred_.at(pc);
    }

    /** @return pcs reachable from the entry (pc 0). */
    const std::vector<bool> &reachable() const { return reachable_; }

  private:
    std::vector<std::vector<std::uint32_t>> succ_;
    std::vector<std::vector<std::uint32_t>> pred_;
    std::vector<bool> reachable_;
};

} // namespace wmr

#endif // WMR_STATICDET_CFG_HH
