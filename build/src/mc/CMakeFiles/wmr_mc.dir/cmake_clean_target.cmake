file(REMOVE_RECURSE
  "libwmr_mc.a"
)
