
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/staticdet/cfg.cc" "src/staticdet/CMakeFiles/wmr_staticdet.dir/cfg.cc.o" "gcc" "src/staticdet/CMakeFiles/wmr_staticdet.dir/cfg.cc.o.d"
  "/root/repo/src/staticdet/lockset_dataflow.cc" "src/staticdet/CMakeFiles/wmr_staticdet.dir/lockset_dataflow.cc.o" "gcc" "src/staticdet/CMakeFiles/wmr_staticdet.dir/lockset_dataflow.cc.o.d"
  "/root/repo/src/staticdet/static_analyzer.cc" "src/staticdet/CMakeFiles/wmr_staticdet.dir/static_analyzer.cc.o" "gcc" "src/staticdet/CMakeFiles/wmr_staticdet.dir/static_analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prog/CMakeFiles/wmr_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
