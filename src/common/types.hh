/**
 * @file
 * Fundamental scalar types shared by every wmrace module.
 *
 * The simulated machine is a word-addressed shared-memory
 * multiprocessor: addresses name 64-bit words, values are signed
 * 64-bit integers, and processors are small dense ids.
 */

#ifndef WMR_COMMON_TYPES_HH
#define WMR_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace wmr {

/** Word address in the simulated shared memory. */
using Addr = std::uint32_t;

/** Value stored in a memory word or a register. */
using Value = std::int64_t;

/** Dense processor identifier, 0-based. */
using ProcId = std::uint16_t;

/** Register index inside one processor. */
using RegId = std::uint8_t;

/** Global identifier of a dynamic memory operation. */
using OpId = std::uint64_t;

/** Identifier of a dynamic event (sync or computation event). */
using EventId = std::uint32_t;

/** Simulated time in cycles. */
using Tick = std::uint64_t;

/** Sentinel for "no operation". */
inline constexpr OpId kNoOp = std::numeric_limits<OpId>::max();

/** Sentinel for "no event". */
inline constexpr EventId kNoEvent = std::numeric_limits<EventId>::max();

/** Sentinel for "no processor". */
inline constexpr ProcId kNoProc = std::numeric_limits<ProcId>::max();

} // namespace wmr

#endif // WMR_COMMON_TYPES_HH
