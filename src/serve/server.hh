/**
 * @file
 * The wmrace analysis server: a long-lived daemon that accepts trace
 * uploads over the serve protocol (protocol.hh), schedules analyses
 * on a worker pool carved from one global --jobs budget, and answers
 * with reports byte-identical to local `wmrace check` output.
 *
 * Shape (one accept loop, W analysis workers, one bounded queue):
 *
 *   accept ── read request ── cache? ──hit──▶ respond (no analysis)
 *                               │miss
 *                               ▼
 *                       admission control ──full──▶ Overloaded
 *                               │
 *                        [spool + queue]
 *                               ▼
 *                    worker: analyze → cache.put
 *                            → journal → respond
 *
 * ADMISSION CONTROL is explicit and visible: the request queue is
 * bounded (maxQueue) and total queued upload bytes are bounded
 * (maxInflightBytes); a request that does not fit is answered
 * Overloaded with a retry-after hint IMMEDIATELY — the server never
 * queues unboundedly and the accept loop never blocks on a full
 * queue (WorkQueue::tryPush is the enforcement point).
 *
 * THREAD BUDGET: --jobs J is the global analysis budget.  W workers
 * (default min(J, 4)) each run analyses with max(1, J/W) threads, so
 * a lone large upload still parallelizes while concurrent uploads
 * share the same J cores instead of oversubscribing W*J.
 *
 * CRASH SAFETY (optional, spoolDir): every admitted upload is
 * spooled to disk before analysis and journaled through the batch
 * checkpoint writer when it completes.  A server restarted over the
 * same spool re-analyzes exactly the admitted-but-unjournaled
 * requests into the cache before accepting new work, so a crash
 * loses connections but not analysis work.
 *
 * SHUTDOWN: beginShutdown() is async-signal-safe (one write to a
 * self-pipe), so the CLI's SIGTERM handler can call it directly; the
 * server then drains — queued requests are still analyzed and
 * answered, new ones get a Draining response — and run() returns.
 */

#ifndef WMR_SERVE_SERVER_HH
#define WMR_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/work_queue.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"

namespace wmr {
class CheckpointWriter;
}

namespace wmr::serve {

struct ServeOptions
{
    /** Unix-domain listening socket path (the default transport). */
    std::string socketPath;

    /** >= 0: listen on loopback TCP this port INSTEAD of the unix
     *  socket (the cross-host transport). */
    int tcpPort = -1;

    /** Global analysis thread budget (0 = hardware concurrency). */
    unsigned jobs = 0;

    /** Concurrent analysis workers (0 = min(jobs, 4)). */
    unsigned workers = 0;

    /** Bounded request queue depth (admission control edge #1). */
    std::size_t maxQueue = 64;

    /** Total bytes of queued uploads (admission control edge #2). */
    std::uint64_t maxInflightBytes = 256ull << 20;

    /** Largest single upload honored (pre-read header check). */
    std::uint64_t maxRequestBytes = 1ull << 30;

    /** Result cache memory budget (0 disables caching). */
    std::uint64_t cacheBytes = 64ull << 20;

    /** Result cache disk tier ("" = memory only). */
    std::string cacheDir;

    /** Admitted-request spool + completion journal for crash-safe
     *  recovery ("" = no spooling). */
    std::string spoolDir;

    /** Client retry hint attached to Overloaded responses. */
    std::uint32_t retryAfterMs = 250;

    /** Per-connection socket I/O timeout (0 = none). */
    unsigned ioTimeoutSec = 30;

    /** TEST HOOK: when set, every worker calls this immediately
     *  before analyzing — tests park workers on a latch here to
     *  flood the queue deterministically. */
    std::function<void()> testAnalysisGate;
};

/** Point-in-time serving counters (statusJson() renders these). */
struct ServeStats
{
    std::uint64_t requests = 0;   ///< frames accepted and parsed
    std::uint64_t analyses = 0;   ///< analyses actually run
    std::uint64_t overloaded = 0; ///< admission rejections
    std::uint64_t badRequests = 0;
    std::uint64_t drainRejected = 0; ///< refused while draining
    std::uint64_t recovered = 0; ///< spool entries re-analyzed at boot
    std::uint64_t queueDepth = 0;
    std::uint64_t inflightBytes = 0;
};

class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, recover the spool, start the workers and the accept
     * loop.  @return false (with lastError() set) when the socket
     * cannot be bound or the spool/journal cannot be opened.
     */
    bool start();

    /** Block until the server has drained and every thread exited
     *  (i.e. until after beginShutdown()). */
    void waitDrained();

    /** start() + waitDrained(). */
    bool run();

    /**
     * Request a graceful drain.  ASYNC-SIGNAL-SAFE: one write(2) on
     * a pre-opened pipe — callable straight from a SIGTERM handler.
     */
    void beginShutdown();

    const std::string &lastError() const { return error_; }

    /** Bound address for clients: the socket path, or
     *  "tcp:127.0.0.1:PORT" (with the kernel-assigned port when
     *  tcpPort was 0). */
    std::string boundAddress() const;

    ServeStats stats() const;
    CacheStats cacheStats() const { return cache_.stats(); }

    /** One-line server status JSON (the Status command's payload;
     *  schema "wmrace-serve-status"). */
    std::string statusJson() const;

  private:
    struct Job
    {
        int fd = -1;
        std::uint32_t reqFlags = 0;
        std::vector<std::uint8_t> body;
        CacheKey key;
        std::string spoolPath; ///< "" when spooling is off
    };

    bool bindListener();
    bool recoverSpool();
    void acceptLoop();
    void workerLoop(unsigned index);
    void handleConnection(int fd);
    void handleAnalyze(int fd, Request &req);
    void serveJob(Job &job, unsigned analysisThreads);
    void respondAndClose(int fd, const Response &resp);
    std::string spoolRequest(const Job &job);

    const ServeOptions opts_;
    unsigned analysisThreads_ = 1;
    unsigned workerCount_ = 1;

    ResultCache cache_;
    WorkQueue<Job> queue_;
    std::unique_ptr<CheckpointWriter> journal_;

    int listenFd_ = -1;
    int boundTcpPort_ = -1;
    int wakePipe_[2] = {-1, -1};

    std::atomic<bool> draining_{false};
    std::atomic<std::uint64_t> inflightBytes_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> analyses_{0};
    std::atomic<std::uint64_t> overloaded_{0};
    std::atomic<std::uint64_t> badRequests_{0};
    std::atomic<std::uint64_t> drainRejected_{0};
    std::atomic<std::uint64_t> recovered_{0};

    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    bool started_ = false;
    std::string error_;
};

} // namespace wmr::serve

#endif // WMR_SERVE_SERVER_HH
