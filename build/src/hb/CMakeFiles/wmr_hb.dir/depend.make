# Empty dependencies file for wmr_hb.
# This may be replaced when dependencies are built.
