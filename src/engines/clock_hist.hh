/**
 * @file
 * Shared single-pass race-detection machinery of the clock engines.
 *
 * Both shb and wcp walk the event stream once with per-processor
 * vector clocks and per-address access histories, using the same
 * one-directional race test the streaming analyzer relies on:
 * events arrive in event-id order and every ordering edge points
 * forward, so a history entry (proc q, epoch i) races a new event e
 * iff C_e[q] < i.  The engines differ only in how C_e is advanced
 * (which join edges exist); the enumeration below mirrors
 * detect/race_finder.cc exactly (writers×writers, writers×readers,
 * an event writing and reading a word indexed once as a writer,
 * sync-sync pairs excluded), so a clock engine's race set is
 * directly comparable to the canonical finder's.
 */

#ifndef WMR_ENGINES_CLOCK_HIST_HH
#define WMR_ENGINES_CLOCK_HIST_HH

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "engines/engine.hh"
#include "hb/vector_clock.hh"

namespace wmr::engines::detail {

/** One recorded access of an address. */
struct HistEntry
{
    EventId id = kNoEvent;
    ProcId proc = kNoProc;
    std::uint64_t epoch = 0; ///< 1-based event index in proc
    bool isSync = false;
};

/** Per-address access history. */
struct AddrHist
{
    std::vector<HistEntry> writers;
    std::vector<HistEntry> readers; ///< events reading, not writing
};

/** Race accumulator keyed by canonical event pair. */
class RaceTable
{
  public:
    /** Record that (a, b) race on @p addr. */
    void
    add(EventId a, EventId b, Addr addr, bool isData)
    {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(a) << 32) | b;
        const auto it = index_.find(key);
        if (it != index_.end()) {
            races_[it->second].addrs.push_back(addr);
            return;
        }
        index_.emplace(key,
                       static_cast<std::uint32_t>(races_.size()));
        EngineRace r;
        r.a = a;
        r.b = b;
        r.addrs.push_back(addr);
        r.isDataRace = isData;
        races_.push_back(std::move(r));
    }

    std::size_t size() const { return races_.size(); }

    /** @return the races in canonical order: sorted by (a, b), each
     *  address list sorted and deduplicated — the exact form
     *  findRaces() returns. */
    std::vector<EngineRace>
    canonical() const
    {
        std::vector<EngineRace> out = races_;
        for (auto &r : out) {
            std::sort(r.addrs.begin(), r.addrs.end());
            r.addrs.erase(
                std::unique(r.addrs.begin(), r.addrs.end()),
                r.addrs.end());
        }
        std::sort(out.begin(), out.end(),
                  [](const EngineRace &x, const EngineRace &y) {
                      return x.a != y.a ? x.a < y.a : x.b < y.b;
                  });
        return out;
    }

    /** @return races in DISCOVERY order (feed order of the later
     *  endpoint) — what per-variable first-race attribution needs. */
    const std::vector<EngineRace> &discovered() const
    {
        return races_;
    }

  private:
    std::unordered_map<std::uint64_t, std::uint32_t> index_;
    std::vector<EngineRace> races_;
};

/**
 * Run the race test of event @p ev (clock @p clock, epoch @p epoch)
 * against @p hist and record its accesses.  @p writes / @p reads are
 * the event's accessed addresses (reads excludes written words);
 * @p isSync marks a sync event (sync-sync pairs are skipped, like
 * the default RaceFinderOptions).  Races are added to @p table.
 */
inline void
testAndRecord(std::unordered_map<Addr, AddrHist> &hist,
              const EventId id, const ProcId proc,
              const std::uint64_t epoch, const bool isSync,
              const VectorClock &clock,
              const std::vector<Addr> &writes,
              const std::vector<Addr> &reads, RaceTable &table)
{
    const auto scan = [&](const std::vector<HistEntry> &entries,
                          Addr addr) {
        for (const HistEntry &h : entries) {
            if (h.proc == proc)
                continue; // po-ordered for sure
            if (h.isSync && isSync)
                continue; // general race, not a data race
            if (clock.get(h.proc) < h.epoch)
                table.add(h.id, id, addr, true);
        }
    };

    for (const Addr a : writes) {
        const auto it = hist.find(a);
        if (it != hist.end()) {
            scan(it->second.writers, a);
            scan(it->second.readers, a);
        }
    }
    for (const Addr a : reads) {
        const auto it = hist.find(a);
        if (it != hist.end())
            scan(it->second.writers, a);
    }

    const HistEntry me{id, proc, epoch, isSync};
    for (const Addr a : writes)
        hist[a].writers.push_back(me);
    for (const Addr a : reads)
        hist[a].readers.push_back(me);
}

/** Split @p ev into the writes/reads address lists the enumeration
 *  uses (reads excludes words the event also writes). */
inline void
eventAccesses(const Event &ev, std::vector<Addr> &writes,
              std::vector<Addr> &reads)
{
    writes.clear();
    reads.clear();
    if (ev.kind == EventKind::Sync) {
        if (ev.syncOp.kind == OpKind::Write)
            writes.push_back(ev.syncOp.addr);
        else
            reads.push_back(ev.syncOp.addr);
        return;
    }
    ev.writeSet.forEach([&](std::size_t a) {
        writes.push_back(static_cast<Addr>(a));
    });
    ev.readSet.forEach([&](std::size_t a) {
        if (!ev.writeSet.test(a))
            reads.push_back(static_cast<Addr>(a));
    });
}

} // namespace wmr::engines::detail

#endif // WMR_ENGINES_CLOCK_HIST_HH
