/**
 * @file
 * Integration tests: the full post-mortem workflow end to end —
 * assemble / build a program, execute it on a weak model, write
 * trace files, read them back in a separate "analysis phase", detect
 * and report — plus cross-module consistency checks.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "detect/analysis.hh"
#include "detect/report.hh"
#include "onthefly/vc_detector.hh"
#include "prog/assembler.hh"
#include "trace/trace_io.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

TEST(EndToEnd, AssembleSimulateTraceDetect)
{
    // The full user workflow starting from assembly text.
    const Program p = assemble(R"(
        .var x 0
        .var y 1
        .var s 2 1
        .thread                     # P1
            storei [x], 1
            storei [y], 1
            unset [s]
            halt
        .thread                     # P2
        spin: tas r0, [s]
            bnz r0, spin
            load r1, [y]
            load r2, [x]
            halt
    )");

    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 4;
    const auto res = runProgram(p, opts);
    ASSERT_TRUE(res.completed);

    const std::string path = "/tmp/wmr_e2e_trace.bin";
    writeTraceFile(buildTrace(res), path);
    const auto det = analyzeTrace(readTraceFile(path));
    std::remove(path.c_str());

    EXPECT_FALSE(det.anyDataRace());
    const auto report = formatReport(det, &p);
    EXPECT_NE(report.find("NO data races detected"),
              std::string::npos);
}

TEST(EndToEnd, PostMortemPhasesSeparated)
{
    // Phase 1: instrumented execution writes trace files.
    const auto s = stageFigure2bExecution();
    const std::string path = "/tmp/wmr_e2e_queue.bin";
    writeTraceFile(buildTrace(s.result, {.keepMemberOps = true}),
                   path);

    // Phase 2 (post-mortem): a fresh analysis from the file alone.
    const auto det = analyzeTrace(readTraceFile(path));
    std::remove(path.c_str());

    EXPECT_TRUE(det.anyDataRace());
    ASSERT_EQ(det.partitions().firstPartitions.size(), 1u);
    // SCP classification survives serialization (divergence flags
    // ride in the trace's member-op metadata only when ops are
    // available; the trace-only path gives the conservative view).
    EXPECT_FALSE(det.scp().wholeExecutionSc);
}

TEST(EndToEnd, OnTheFlyAndPostMortemAgreeAcrossModels)
{
    for (const auto kind : kAllModels) {
        for (std::uint64_t seed = 0; seed < 8; ++seed) {
            const Program p = (seed % 2) ? randomRacyProgram(seed)
                                         : randomRaceFreeProgram(seed);
            VcDetector otf(p.numProcs(), p.memWords());
            ExecOptions opts;
            opts.model = kind;
            opts.seed = seed;
            opts.drainLaziness = 0.8;
            opts.sink = &otf;
            const auto res = runProgram(p, opts);
            ASSERT_TRUE(res.completed);
            const auto det = analyzeExecution(res);
            EXPECT_EQ(!otf.races().empty(), det.anyDataRace())
                << modelName(kind) << " seed " << seed;
        }
    }
}

TEST(EndToEnd, EventGranularityDoesNotChangeTheVerdict)
{
    // Splitting computation events (finer tracing) must not change
    // whether races are found, only how they are grouped.
    const auto s = stageFigure2bExecution();
    for (const std::uint32_t run : {0u, 1u, 2u, 8u}) {
        AnalysisOptions opts;
        opts.traceOpts.maxCompRun = run;
        opts.traceOpts.keepMemberOps = true;
        const auto det = analyzeExecution(s.result, opts);
        EXPECT_TRUE(det.anyDataRace()) << "run " << run;
        EXPECT_FALSE(det.partitions().firstPartitions.empty());
    }
}

TEST(EndToEnd, ScAndWeakAgreeOnRaceFreePrograms)
{
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const Program p = randomRaceFreeProgram(seed);
        ExecutionResult sc, wo;
        {
            ExecOptions opts;
            opts.model = ModelKind::SC;
            opts.seed = seed;
            sc = runProgram(p, opts);
        }
        {
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.seed = seed;
            wo = runProgram(p, opts);
        }
        // Identical schedules would give identical results, but the
        // rng use differs; assert the semantic agreement instead:
        // both race-free, both SC, same final shared state given the
        // deterministic per-address last writes under locks...
        // (final memory can legitimately differ when commutative
        // blocks interleave differently, so compare race verdicts).
        EXPECT_EQ(sc.staleReads, 0u);
        EXPECT_EQ(wo.staleReads, 0u);
        EXPECT_FALSE(analyzeExecution(sc).anyDataRace());
        EXPECT_FALSE(analyzeExecution(wo).anyDataRace());
    }
}

TEST(EndToEnd, LargeExecutionPipeline)
{
    // A larger run end to end: ~10k operations through tracing,
    // serialization, detection.
    RandomProgConfig cfg;
    cfg.seed = 42;
    cfg.procs = 6;
    cfg.blocksPerProc = 40;
    cfg.opsPerBlock = 10;
    cfg.dataWords = 64;
    cfg.numLocks = 8;
    cfg.unlockedProb = 0.05;
    const Program p = randomProgram(cfg);

    ExecOptions opts;
    opts.model = ModelKind::RCsc;
    opts.seed = 42;
    const auto res = runProgram(p, opts);
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.ops.size(), 2'000u);

    const auto bytes =
        serializeTrace(buildTrace(res, {.keepMemberOps = true}));
    const auto det = analyzeTrace(deserializeTrace(bytes));
    // Racy blocks exist (5%), so usually some race appears; the
    // pipeline must at minimum be internally consistent.
    EXPECT_EQ(det.anyDataRace(),
              !det.partitions().firstPartitions.empty());
    const auto bad = checkCondition34(det.races(), det.scp(),
                                      det.augmented());
    EXPECT_TRUE(bad.empty());
}

TEST(EndToEnd, ReportIsStableAcrossRuns)
{
    const auto s1 = stageFigure2bExecution();
    const auto s2 = stageFigure2bExecution();
    const auto r1 = formatReport(analyzeExecution(s1.result),
                                 &s1.program);
    const auto r2 = formatReport(analyzeExecution(s2.result),
                                 &s2.program);
    EXPECT_EQ(r1, r2);
}

} // namespace
} // namespace wmr
