/**
 * @file
 * Differential tests of the parallel single-trace analysis engine.
 *
 * The engine's contract is exact: every analysis artifact — the race
 * list, partitions, SCP verdict, text and JSON reports — must be
 * BYTE-IDENTICAL at every thread count.  Each suite here runs the
 * same input at threads ∈ {1, 2, 4, 8} and compares outputs:
 *
 *  - AnalysisParallel.*:     figure traces, random-program traces,
 *                            serialization round-trips, salvaged
 *                            segmented traces, large synthetic traces;
 *  - ReachabilityParallel.*: the level-parallel clock build is
 *                            bit-identical to the serial one and
 *                            actually engages on wide condensations;
 *  - RaceFinderSharding.*:   shard merge determinism and the
 *                            ordered-pair memoization counters;
 *  - BatchBudget.*:          `batch` splits its budget between
 *                            inter- and intra-trace parallelism, and
 *                            nested parallelism stays deterministic
 *                            (this suite doubles as the TSan entry
 *                            together with AnalysisParallel.*).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "detect/report.hh"
#include "hb/hb_graph.hh"
#include "hb/reachability.hh"
#include "pipeline/aggregate_report.hh"
#include "pipeline/batch_runner.hh"
#include "sim/executor.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"
#include "workload/synthetic_trace.hh"

namespace fs = std::filesystem;

namespace wmr {
namespace {

constexpr unsigned kThreadCounts[] = {2, 4, 8};

/** Render every deterministic artifact of one analysis as text. */
std::string
artifactsOf(const DetectionResult &det)
{
    std::string out = formatReport(det, nullptr, {.showEvents = true});
    out += "races:";
    for (const auto &r : det.races()) {
        out += " (" + std::to_string(r.a) + "," + std::to_string(r.b) +
               ":" + (r.isDataRace ? "d" : "g");
        for (const Addr a : r.addrs)
            out += " " + std::to_string(a);
        out += ")";
    }
    out += "\npartitions:";
    for (const auto &part : det.partitions().partitions) {
        out += " [";
        for (const RaceId r : part.races)
            out += std::to_string(r) + " ";
        out += part.first ? "F]" : "]";
    }
    return out;
}

/** Analyze @p trace at several thread counts; all artifacts must
 *  equal the serial run's. */
void
expectIdenticalAcrossThreads(const ExecutionTrace &trace,
                             const char *what)
{
    AnalysisOptions serial;
    serial.threads = 1;
    const DetectionResult base = analyzeTrace(trace, serial);
    const std::string expected = artifactsOf(base);
    for (const unsigned n : kThreadCounts) {
        AnalysisOptions opts;
        opts.threads = n;
        const DetectionResult det = analyzeTrace(trace, opts);
        EXPECT_EQ(det.stats().threads, n);
        EXPECT_EQ(artifactsOf(det), expected)
            << what << " diverged at threads=" << n;
    }
}

// ---------------------------------------------------------------
// AnalysisParallel: end-to-end differential runs.
// ---------------------------------------------------------------

TEST(AnalysisParallel, Figure1aViolationTrace)
{
    const Scenario sc = stageFigure1aViolation();
    const auto trace =
        buildTrace(sc.result, {.keepMemberOps = true});
    // Sanity: the staged violation really races.
    AnalysisOptions opts;
    opts.threads = 8;
    EXPECT_TRUE(analyzeTrace(trace, opts).anyDataRace());
    expectIdenticalAcrossThreads(trace, "figure1a");
}

TEST(AnalysisParallel, Figure2bQueueTrace)
{
    const Scenario sc = stageFigure2bExecution();
    expectIdenticalAcrossThreads(
        buildTrace(sc.result, {.keepMemberOps = true}), "figure2b");
}

TEST(AnalysisParallel, RandomProgramTraces)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const Program prog = seed % 2 == 0
                                 ? randomRacyProgram(seed)
                                 : randomRaceFreeProgram(seed);
        ExecOptions eopts;
        eopts.model = ModelKind::WO;
        eopts.seed = seed;
        const auto res = runProgram(prog, eopts);
        expectIdenticalAcrossThreads(
            buildTrace(res, {.keepMemberOps = true}), "random");
    }
}

TEST(AnalysisParallel, SerializationRoundTripTrace)
{
    // The `check` path: a trace that went through the on-disk format
    // (member ops dropped) analyzed post-mortem.
    const Program prog = randomRacyProgram(17);
    ExecOptions eopts;
    eopts.model = ModelKind::WO;
    eopts.seed = 17;
    const auto res = runProgram(prog, eopts);
    const auto bytes =
        serializeTrace(buildTrace(res, {.keepMemberOps = true}));
    const auto parsed = tryDeserializeTrace(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    expectIdenticalAcrossThreads(parsed.trace, "round-trip");
}

TEST(AnalysisParallel, SalvagedSegmentedTrace)
{
    // The damaged-recording path: a segmented trace missing its tail,
    // recovered by the salvage reader, must analyze identically too.
    const Program prog = randomRacyProgram(23);
    ExecOptions eopts;
    eopts.model = ModelKind::WO;
    eopts.seed = 23;
    const auto res = runProgram(prog, eopts);
    auto bytes = serializeSegmentedTrace(
        buildTrace(res, {.keepMemberOps = true}), 2);
    ASSERT_GT(bytes.size(), 32u);
    bytes.resize(bytes.size() - 9); // tear the final segment
    const auto salvaged = trySalvageTrace(bytes);
    ASSERT_TRUE(salvaged.ok()) << salvaged.error;
    ASSERT_TRUE(salvaged.salvage.salvaged);
    ASSERT_GT(salvaged.trace.events().size(), 0u);
    expectIdenticalAcrossThreads(salvaged.trace, "salvaged");
}

TEST(AnalysisParallel, LargeSyntheticTraces)
{
    // Big enough to actually shard, hot enough to generate plenty of
    // candidate pairs, and two very different shapes: deep (few
    // procs, long po chains) and wide (many procs, short chains —
    // the level-parallel clock regime).
    SyntheticTraceOptions deep;
    deep.procs = 4;
    deep.eventsPerProc = 600;
    deep.memWords = 192;
    deep.hotFraction = 0.1; // candidate count ~ (hot accessors)^2
    deep.seed = 5;
    expectIdenticalAcrossThreads(makeSyntheticTrace(deep), "deep");

    SyntheticTraceOptions wide;
    wide.procs = 16;
    wide.eventsPerProc = 60;
    wide.memWords = 256;
    wide.hotFraction = 0.2;
    wide.seed = 6;
    const auto trace = makeSyntheticTrace(wide);
    AnalysisOptions opts;
    opts.threads = 4;
    EXPECT_GT(analyzeTrace(trace, opts).races().size(), 0u);
    expectIdenticalAcrossThreads(trace, "wide");
}

TEST(AnalysisParallel, ZeroMeansHardwareConcurrency)
{
    SyntheticTraceOptions small;
    small.procs = 2;
    small.eventsPerProc = 50;
    small.seed = 9;
    const auto trace = makeSyntheticTrace(small);
    AnalysisOptions opts;
    opts.threads = 0;
    const DetectionResult det = analyzeTrace(trace, opts);
    EXPECT_GE(det.stats().threads, 1u);
    AnalysisOptions serial;
    serial.threads = 1;
    EXPECT_EQ(artifactsOf(det),
              artifactsOf(analyzeTrace(trace, serial)));
}

// ---------------------------------------------------------------
// ReachabilityParallel: the level-parallel clock build.
// ---------------------------------------------------------------

TEST(ReachabilityParallel, WideCondensationEngagesAndMatchesSerial)
{
    // Wide shape: 256 procs x 32 events = 8192 components (above the
    // engagement floor) in ~32 levels => avg width ~256.
    SyntheticTraceOptions wide;
    wide.procs = 256;
    wide.eventsPerProc = 32;
    wide.memWords = 128;
    wide.syncFraction = 0.1;
    wide.seed = 11;
    const auto trace = makeSyntheticTrace(wide);
    const HbGraph hb(trace);

    const ReachabilityIndex serial(hb, trace, 1);
    const ReachabilityIndex parallel(hb, trace, 4);
    EXPECT_FALSE(serial.buildStats().parallelClocks);
    EXPECT_TRUE(parallel.buildStats().parallelClocks)
        << "wide condensation should take the level-parallel path";
    EXPECT_EQ(serial.buildStats().components,
              parallel.buildStats().components);

    // Exhaustive over a sample grid, plus every po-adjacent pair.
    const EventId n =
        static_cast<EventId>(trace.events().size());
    const EventId stride = n / 97 + 1;
    for (EventId a = 0; a < n; a += stride) {
        for (EventId b = 0; b < n; b += stride) {
            ASSERT_EQ(serial.reaches(a, b), parallel.reaches(a, b))
                << a << " -> " << b;
            ASSERT_EQ(serial.ordered(a, b), parallel.ordered(a, b))
                << a << " <> " << b;
        }
    }
}

TEST(ReachabilityParallel, NarrowCondensationFallsBackToSerial)
{
    // Deep shape: 2 procs x 600 events => levels ~ chain length, avg
    // width ~2 — the parallel path must decline (and still be right).
    SyntheticTraceOptions deep;
    deep.procs = 2;
    deep.eventsPerProc = 600;
    deep.seed = 12;
    const auto trace = makeSyntheticTrace(deep);
    const HbGraph hb(trace);
    const ReachabilityIndex reach(hb, trace, 8);
    EXPECT_FALSE(reach.buildStats().parallelClocks);
}

// ---------------------------------------------------------------
// RaceFinderSharding: merge determinism + ordered-pair memoization.
// ---------------------------------------------------------------

/** Two procs, each: comp event writing words [10, 10+span), then a
 *  sync on word 0 (P0 release write, P1 acquire read). @p paired
 *  links the acquire to the release (ordering the comp events when
 *  the comp precedes the release / follows the acquire). */
ExecutionTrace
twoProcConflictTrace(Addr span, bool paired)
{
    ExecutionTrace trace;
    trace.setShape(2, 10 + span);

    Event c0;
    c0.kind = EventKind::Computation;
    c0.proc = 0;
    for (Addr a = 0; a < span; ++a)
        c0.writeSet.set(10 + a);
    c0.opCount = static_cast<std::uint32_t>(span);
    trace.addEvent(std::move(c0));

    Event rel;
    rel.kind = EventKind::Sync;
    rel.proc = 0;
    rel.syncOp.proc = 0;
    rel.syncOp.sync = true;
    rel.syncOp.kind = OpKind::Write;
    rel.syncOp.release = true;
    rel.syncOp.addr = 0;
    const EventId relId = trace.addEvent(std::move(rel));

    Event acq;
    acq.kind = EventKind::Sync;
    acq.proc = 1;
    acq.syncOp.proc = 1;
    acq.syncOp.sync = true;
    acq.syncOp.kind = OpKind::Read;
    acq.syncOp.acquire = true;
    acq.syncOp.addr = 0;
    if (paired)
        acq.pairedRelease = relId;
    trace.addEvent(std::move(acq));

    Event c1;
    c1.kind = EventKind::Computation;
    c1.proc = 1;
    for (Addr a = 0; a < span; ++a)
        c1.writeSet.set(10 + a);
    c1.opCount = static_cast<std::uint32_t>(span);
    trace.addEvent(std::move(c1));

    trace.setTotalOps(2 * span + 2);
    return trace;
}

TEST(RaceFinderSharding, OrderedPairsAreMemoized)
{
    // The comp events conflict on 12 words but hb1 orders them
    // (release->acquire): ONE oracle query, 11 memo hits, no race.
    const auto trace = twoProcConflictTrace(12, true);
    const HbGraph hb(trace);
    const ReachabilityIndex reach(hb, trace);

    RaceFinderStats stats;
    const auto races = findRaces(trace, reach, {}, 1, &stats);
    EXPECT_TRUE(races.empty());
    EXPECT_EQ(stats.candidatePairs, 12u);
    EXPECT_EQ(stats.reachQueries, 1u);
    EXPECT_EQ(stats.memoHits, 11u);
    EXPECT_EQ(stats.orderedPairs, 1u);
}

TEST(RaceFinderSharding, RacingPairsAreMemoizedToo)
{
    // Without the pairing the same pair races; still one oracle
    // query, and the addr list accumulates through the memo.
    const auto trace = twoProcConflictTrace(12, false);
    const HbGraph hb(trace);
    const ReachabilityIndex reach(hb, trace);

    RaceFinderStats stats;
    const auto races = findRaces(trace, reach, {}, 1, &stats);
    ASSERT_EQ(races.size(), 1u);
    EXPECT_EQ(races[0].addrs.size(), 12u);
    EXPECT_EQ(stats.reachQueries, 1u);
    EXPECT_EQ(stats.memoHits, 11u);
    EXPECT_EQ(stats.orderedPairs, 0u);
}

TEST(RaceFinderSharding, ShardedMergeMatchesSerial)
{
    // A pair conflicting on addresses in DIFFERENT shards is
    // enumerated by each; the merge must union its addr lists into
    // the same canonical race the serial path finds.
    const auto trace = twoProcConflictTrace(12, false);
    const HbGraph hb(trace);
    const ReachabilityIndex reach(hb, trace);

    const auto serial = findRaces(trace, reach, {}, 1);
    for (const unsigned n : kThreadCounts) {
        RaceFinderStats stats;
        const auto sharded = findRaces(trace, reach, {}, n, &stats);
        ASSERT_EQ(sharded.size(), serial.size());
        for (std::size_t i = 0; i < sharded.size(); ++i) {
            EXPECT_EQ(sharded[i].a, serial[i].a);
            EXPECT_EQ(sharded[i].b, serial[i].b);
            EXPECT_EQ(sharded[i].addrs, serial[i].addrs);
            EXPECT_EQ(sharded[i].isDataRace, serial[i].isDataRace);
        }
        EXPECT_GE(stats.shards, 1u);
    }
}

// ---------------------------------------------------------------
// BatchBudget: inter-/intra-trace budget split + nested parallelism.
// ---------------------------------------------------------------

/** A fresh temp directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                (tag + "." + std::to_string(::getpid())))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

/** Write @p count serialized synthetic traces into @p dir. */
CorpusScan
writeSyntheticCorpus(const fs::path &dir, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        SyntheticTraceOptions opts;
        opts.procs = 3;
        opts.eventsPerProc = 80;
        opts.seed = 100 + i;
        const auto bytes = serializeTrace(makeSyntheticTrace(opts));
        std::ofstream out(dir / ("t" + std::to_string(i) + ".trace"),
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }
    return scanCorpus(dir.string());
}

TEST(BatchBudget, LeftoverBudgetBecomesAnalysisThreads)
{
    TempDir dir("wmr_budget_split");
    const CorpusScan corpus = writeSyntheticCorpus(dir.path(), 2);
    ASSERT_TRUE(corpus.ok()) << corpus.error;

    BatchOptions opts;
    opts.jobs = 8;
    const auto batch = runBatch(corpus, opts);
    EXPECT_EQ(batch.metrics.jobs, 2u);
    EXPECT_EQ(batch.metrics.analysisThreads, 4u);
    EXPECT_EQ(batch.metrics.analyzed, 2u);
}

TEST(BatchBudget, ExplicitAnalysisThreadsWin)
{
    TempDir dir("wmr_budget_explicit");
    const CorpusScan corpus = writeSyntheticCorpus(dir.path(), 2);
    ASSERT_TRUE(corpus.ok()) << corpus.error;

    BatchOptions opts;
    opts.jobs = 8;
    opts.analysis.threads = 2;
    const auto batch = runBatch(corpus, opts);
    EXPECT_EQ(batch.metrics.jobs, 2u);
    EXPECT_EQ(batch.metrics.analysisThreads, 2u);
}

TEST(BatchBudget, LargeCorpusKeepsAnalysisSerial)
{
    TempDir dir("wmr_budget_large");
    const CorpusScan corpus = writeSyntheticCorpus(dir.path(), 6);
    ASSERT_TRUE(corpus.ok()) << corpus.error;

    BatchOptions opts;
    opts.jobs = 4;
    const auto batch = runBatch(corpus, opts);
    EXPECT_EQ(batch.metrics.jobs, 4u);
    EXPECT_EQ(batch.metrics.analysisThreads, 1u);
}

TEST(BatchBudget, NestedParallelismIsDeterministic)
{
    // Batch workers running multi-threaded analyzeTrace() inside —
    // the deepest nesting the pipeline supports.  Reports must still
    // match the fully serial run byte for byte.  (Run under
    // WMR_SANITIZE=thread this is also the TSan race check for the
    // nested pools.)
    TempDir dir("wmr_budget_nested");
    const CorpusScan corpus = writeSyntheticCorpus(dir.path(), 3);
    ASSERT_TRUE(corpus.ok()) << corpus.error;

    BatchOptions serial;
    serial.jobs = 1;
    serial.analysis.threads = 1;
    const auto base = runBatch(corpus, serial);
    const std::string baseText = formatBatchReport(base, {});
    const std::string baseJson = batchReportJson(base);

    BatchOptions nested;
    nested.jobs = 3;
    nested.analysis.threads = 4;
    const auto batch = runBatch(corpus, nested);
    EXPECT_EQ(formatBatchReport(batch, {}), baseText);
    EXPECT_EQ(batchReportJson(batch), baseJson);
    EXPECT_GT(batch.metrics.candidatePairs, 0u);
}

} // namespace
} // namespace wmr
