#include "detect/report_model.hh"

#include "common/string_util.hh"

namespace wmr {

namespace {

std::string
addrText(Addr a, const Program *prog)
{
    if (prog)
        return prog->addrName(a);
    return strformat("[%u]", a);
}

std::string
joinAddrs(const std::vector<Addr> &addrs, const Program *prog)
{
    std::string out;
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        if (i)
            out += ",";
        out += addrText(addrs[i], prog);
    }
    return out;
}

} // namespace

ReportEventInfo
summarizeEvent(const Event &ev)
{
    ReportEventInfo info;
    info.id = ev.id;
    info.proc = ev.proc;
    info.isSync = ev.kind == EventKind::Sync;
    info.opCount = ev.opCount;
    if (info.isSync) {
        info.syncOp = ev.syncOp;
        return info;
    }
    ev.readSet.forEach([&](std::size_t a) {
        if (info.reads.size() < 4)
            info.reads.push_back(static_cast<Addr>(a));
    });
    ev.writeSet.forEach([&](std::size_t a) {
        if (info.writes.size() < 4)
            info.writes.push_back(static_cast<Addr>(a));
    });
    return info;
}

std::string
describeEventInfo(const ReportEventInfo &info, const Program *prog)
{
    if (info.isSync) {
        const char *what = info.syncOp.kind == OpKind::Write
                               ? (info.syncOp.release ? "release-write"
                                                      : "sync-write")
                               : (info.syncOp.acquire ? "acquire-read"
                                                      : "sync-read");
        return strformat("E%u P%u %s %s @pc%u", info.id, info.proc,
                         what,
                         addrText(info.syncOp.addr, prog).c_str(),
                         info.syncOp.pc);
    }
    return strformat("E%u P%u computation(%u ops) R{%s} W{%s}",
                     info.id, info.proc, info.opCount,
                     joinAddrs(info.reads, prog).c_str(),
                     joinAddrs(info.writes, prog).c_str());
}

std::string
describeRaceModel(const ReportModel &m, RaceId r, const Program *prog,
                  const ReportOptions &opts)
{
    const ReportRaceModel &race = m.races[r];
    std::string addrs;
    for (std::size_t i = 0;
         i < race.addrs.size() && i < opts.maxAddrsPerRace; ++i) {
        if (i)
            addrs += ",";
        addrs += addrText(race.addrs[i], prog);
    }
    if (race.addrs.size() > opts.maxAddrsPerRace)
        addrs += ",...";
    const char *scp_tag =
        race.inScp ? "SCP" : (race.maybeInScp ? "SCP?" : "non-SCP");
    return strformat(
        "race #%u <%s | %s> on {%s} [%s]%s", r,
        describeEventInfo(race.a, prog).c_str(),
        describeEventInfo(race.b, prog).c_str(), addrs.c_str(),
        scp_tag,
        race.isDataRace ? "" : " (general race, not a data race)");
}

std::string
renderReport(const ReportModel &m, const Program *prog,
             const ReportOptions &opts)
{
    std::string out;

    out += "=== wmrace post-mortem data race report ===\n";
    out += strformat("events: %zu (%u sync), operations: %llu\n",
                     m.numEvents, m.numSyncEvents,
                     static_cast<unsigned long long>(m.totalOps));
    out += strformat("races: %zu (%zu data races) in %zu partitions\n",
                     m.races.size(), m.numDataRaces,
                     m.partitions.size());

    if (!m.anyDataRace) {
        out += "NO data races detected.\n";
        out += "By Theorem 4.1 / Condition 3.4(1): this execution was "
               "sequentially consistent;\nreason about it exactly as "
               "on a sequentially consistent machine.\n";
        return out;
    }

    if (m.wholeExecutionSc) {
        out += "execution remained SC end-to-end (no stale reads); "
               "all races are SCP races.\n";
    } else {
        out += strformat(
            "sequentially consistent prefix: operations [0, %llu)\n",
            static_cast<unsigned long long>(m.scpEndOp));
    }

    out += strformat("FIRST partitions to report: %zu\n",
                     m.firstPartitions.size());
    for (const auto pi : m.firstPartitions) {
        const auto &part = m.partitions[pi];
        out += strformat("-- first partition (G' component %u), "
                         "%zu race(s):\n",
                         part.label, part.races.size());
        out += "   at least one race below also occurs in a "
               "sequentially consistent execution (Theorem 4.2)\n";
        for (const auto r : part.races)
            out += "   " + describeRaceModel(m, r, prog, opts) + "\n";
    }

    if (opts.showNonFirst) {
        for (std::size_t i = 0; i < m.partitions.size(); ++i) {
            const auto &part = m.partitions[i];
            if (part.first)
                continue;
            out += strformat("-- non-first partition (G' component "
                             "%u), %zu race(s) — affected by earlier "
                             "races, may be artifacts:\n",
                             part.label, part.races.size());
            for (const auto r : part.races)
                out += "   " + describeRaceModel(m, r, prog, opts) +
                       "\n";
        }
    }
    return out;
}

} // namespace wmr
