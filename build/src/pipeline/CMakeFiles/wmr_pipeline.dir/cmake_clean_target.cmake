file(REMOVE_RECURSE
  "libwmr_pipeline.a"
)
