/**
 * @file
 * Bounded multi-producer/multi-consumer work queue.
 *
 * The batch pipeline's hand-off point between the corpus producer and
 * the analysis workers.  Deliberately simple — a mutex, two condition
 * variables and a deque — because batch jobs are file-sized, not
 * nanosecond-sized; contention on the lock is noise next to a single
 * trace parse.  The queue records its peak depth so the metrics can
 * report how far the producer ran ahead of the workers.
 */

#ifndef WMR_PIPELINE_WORK_QUEUE_HH
#define WMR_PIPELINE_WORK_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace wmr {

template <typename T>
class WorkQueue
{
  public:
    /** @p capacity bounds the backlog (0 means unbounded). */
    explicit WorkQueue(std::size_t capacity = 0)
        : capacity_(capacity)
    {
    }

    /**
     * Enqueue @p item, blocking while the queue is full.
     * @return false (item dropped) when the queue was closed.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [&] {
            return closed_ || capacity_ == 0 ||
                   items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        if (items_.size() > peakDepth_)
            peakDepth_ = items_.size();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Enqueue @p item only if there is room RIGHT NOW.  @return
     * false — without blocking — when the queue is full or closed.
     * This is the admission-control edge of the serve subsystem: a
     * saturated queue must turn into an explicit "overloaded"
     * rejection at the door, never into a stalled accept loop.
     */
    bool
    tryPush(T item)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_ ||
            (capacity_ != 0 && items_.size() >= capacity_))
            return false;
        items_.push_back(std::move(item));
        if (items_.size() > peakDepth_)
            peakDepth_ = items_.size();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue into @p out, blocking while the queue is empty.
     * @return false when the queue is closed and drained.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock,
                       [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return true;
    }

    /** Stop accepting pushes; pending items still drain via pop(). */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    /** @return the deepest backlog observed so far. */
    std::size_t
    peakDepth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return peakDepth_;
    }

    /** @return the current backlog (racy by nature; metrics only). */
    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    std::size_t capacity_;
    std::size_t peakDepth_ = 0;
    bool closed_ = false;
};

} // namespace wmr

#endif // WMR_PIPELINE_WORK_QUEUE_HH
