#include "sim/store_buffer_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wmr {

std::string_view
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::SC: return "SC";
      case ModelKind::WO: return "WO";
      case ModelKind::RCsc: return "RCsc";
      case ModelKind::DRF0: return "DRF0";
      case ModelKind::DRF1: return "DRF1";
      case ModelKind::TSO: return "TSO";
      case ModelKind::PSO: return "PSO";
    }
    panic("modelName: bad kind %d", static_cast<int>(kind));
}

ModelPolicy
policyFor(ModelKind kind)
{
    ModelPolicy p;
    p.kind = kind;
    switch (kind) {
      case ModelKind::SC:
        p.noBuffer = true;
        break;
      case ModelKind::WO:
        p.drainOnAllSync = true;
        p.pipelinedDrain = false;
        break;
      case ModelKind::RCsc:
        p.drainOnAllSync = false;
        p.drainOnRelease = true;
        p.pipelinedDrain = false;
        break;
      case ModelKind::DRF0:
        p.drainOnAllSync = true;
        p.pipelinedDrain = true;
        break;
      case ModelKind::DRF1:
        p.drainOnAllSync = false;
        p.drainOnRelease = true;
        p.pipelinedDrain = true;
        break;
      case ModelKind::TSO:
        // x86: FIFO buffer (only W->R reordering observable); locked
        // (sync) instructions flush the buffer.
        p.drainOnAllSync = true;
        p.fifoDrain = true;
        break;
      case ModelKind::PSO:
        // SPARC: per-location FIFO only (W->W reordering observable
        // until an sfence); atomics flush like TSO.
        p.drainOnAllSync = true;
        break;
    }
    return p;
}

std::unique_ptr<MemoryModel>
makeModel(ModelKind kind, ProcId procs, Addr words, const CostParams &cost,
          double drainLaziness)
{
    return std::make_unique<StoreBufferModel>(policyFor(kind), procs,
                                              words, cost, drainLaziness);
}

StoreBufferModel::StoreBufferModel(ModelPolicy policy, ProcId procs,
                                   Addr words, const CostParams &cost,
                                   double drainLaziness)
    : policy_(policy), cost_(cost), drainLaziness_(drainLaziness),
      memory_(words, 0), lastWriter_(words, kNoOp),
      shadowMemory_(words, 0), shadowWriter_(words, kNoOp),
      buffers_(procs), epochs_(procs, 0)
{
}

void
StoreBufferModel::ensureAddr(Addr addr)
{
    if (addr >= memory_.size()) {
        memory_.resize(addr + 1, 0);
        lastWriter_.resize(addr + 1, kNoOp);
        shadowMemory_.resize(addr + 1, 0);
        shadowWriter_.resize(addr + 1, kNoOp);
    }
}

void
StoreBufferModel::shadowWrite(Addr addr, OpId id, Value value)
{
    shadowMemory_[addr] = value;
    shadowWriter_[addr] = id;
}

void
StoreBufferModel::witnessVisible(OpId id)
{
    if (id != kNoOp)
        visibility_.push_back(id);
}

std::uint32_t
StoreBufferModel::minEpoch(ProcId proc) const
{
    std::uint32_t m = epochs_[proc];
    for (const auto &st : buffers_[proc])
        m = std::min(m, st.epoch);
    return m;
}

ReadResult
StoreBufferModel::globalRead(ProcId proc, Addr addr, Tick cost)
{
    (void)proc;
    ReadResult r;
    r.value = memory_[addr];
    r.observedWrite = lastWriter_[addr];
    r.stale = (r.observedWrite != shadowWriter_[addr]);
    r.cost = cost;
    return r;
}

ReadResult
StoreBufferModel::readData(ProcId proc, Addr addr)
{
    ensureAddr(addr);
    if (!policy_.noBuffer) {
        // Forward from the newest pending store to this address.
        const auto &buf = buffers_[proc];
        for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
            if (it->addr == addr) {
                ReadResult r;
                r.value = it->value;
                r.observedWrite = it->id;
                r.stale = (r.observedWrite != shadowWriter_[addr]);
                r.cost = cost_.readLatency;
                return r;
            }
        }
    }
    return globalRead(proc, addr, cost_.readLatency);
}

WriteResult
StoreBufferModel::writeData(ProcId proc, Addr addr, Value value, OpId id)
{
    ensureAddr(addr);
    shadowWrite(addr, id, value);
    WriteResult w;
    if (policy_.noBuffer) {
        memory_[addr] = value;
        lastWriter_[addr] = id;
        witnessVisible(id);
        w.cost = cost_.writeLatency;
    } else {
        buffers_[proc].push_back({addr, value, id, epochs_[proc]});
        w.cost = cost_.bufferInsert;
    }
    return w;
}

ReadResult
StoreBufferModel::readSync(ProcId proc, Addr addr, bool acquire)
{
    ensureAddr(addr);
    Tick extra = 0;
    if (!policy_.noBuffer && policy_.drainOnAllSync) {
        // WO/DRF0: every sync operation waits for all previous
        // operations of its processor to complete.
        extra = drainCost(drainProc(proc));
    }
    (void)acquire; // acquire semantics affect pairing, not draining
    return globalRead(proc, addr, cost_.syncAccess + extra);
}

WriteResult
StoreBufferModel::writeSync(ProcId proc, Addr addr, Value value, OpId id,
                            bool release)
{
    ensureAddr(addr);
    Tick extra = 0;
    if (!policy_.noBuffer &&
        (policy_.drainOnAllSync || (policy_.drainOnRelease && release))) {
        extra = drainCost(drainProc(proc));
    }
    shadowWrite(addr, id, value);
    // Sync writes access the coherent memory directly; they are never
    // buffered (they are the mechanism other processors synchronize
    // through, so delaying them would only delay the pairing).
    memory_[addr] = value;
    lastWriter_[addr] = id;
    witnessVisible(id);
    WriteResult w;
    w.cost = (policy_.noBuffer ? cost_.writeLatency : cost_.syncAccess) +
             extra;
    return w;
}

Tick
StoreBufferModel::fence(ProcId proc)
{
    if (policy_.noBuffer)
        return 1;
    return drainCost(drainProc(proc)) + 1;
}

Tick
StoreBufferModel::fenceStoreStore(ProcId proc)
{
    // Ordering-only: nothing drains and the processor does not
    // stall; stores issued after the fence just may not become
    // visible before the ones already buffered.  FIFO (TSO) and
    // unbuffered (SC) models are already store-store ordered.
    if (!policy_.noBuffer && !policy_.fifoDrain &&
        !buffers_[proc].empty()) {
        ++epochs_[proc];
    }
    return 1;
}

void
StoreBufferModel::tick(Rng &rng)
{
    if (policy_.noBuffer)
        return;
    for (ProcId p = 0; p < buffers_.size(); ++p) {
        auto &buf = buffers_[p];
        if (buf.empty())
            continue;
        if (rng.chance(drainLaziness_))
            continue;
        if (policy_.fifoDrain) {
            // TSO: only the oldest pending store may drain.
            drainEntry(p, 0);
            continue;
        }
        // Pick a random drainable entry: the OLDEST pending store to
        // its address (per-location coherence) within the oldest
        // sfence epoch still buffered, any address.
        const std::uint32_t epoch = minEpoch(p);
        std::size_t pick = rng.below(buf.size());
        while (buf[pick].epoch != epoch)
            pick = (pick + 1) % buf.size();
        std::size_t idx = pick;
        for (std::size_t i = 0; i < pick; ++i) {
            if (buf[i].addr == buf[pick].addr) {
                idx = i;
                break;
            }
        }
        drainEntry(p, idx);
    }
}

void
StoreBufferModel::drainEntry(ProcId proc, std::size_t idx)
{
    auto &buf = buffers_[proc];
    wmr_assert(idx < buf.size());
    const PendingStore st = buf[idx];
    memory_[st.addr] = st.value;
    lastWriter_[st.addr] = st.id;
    witnessVisible(st.id);
    buf.erase(buf.begin() + static_cast<std::ptrdiff_t>(idx));
}

std::size_t
StoreBufferModel::drainProc(ProcId proc)
{
    auto &buf = buffers_[proc];
    const std::size_t n = buf.size();
    // Draining everything makes relative order among the drained
    // stores unobservable; apply them in buffer (program) order.
    for (const auto &st : buf) {
        memory_[st.addr] = st.value;
        lastWriter_[st.addr] = st.id;
        witnessVisible(st.id);
    }
    buf.clear();
    return n;
}

Tick
StoreBufferModel::drainCost(std::size_t n) const
{
    if (n == 0)
        return 0;
    if (policy_.pipelinedDrain) {
        return cost_.writeLatency +
               (n - 1) * cost_.drainPipelined;
    }
    return n * cost_.writeLatency;
}

void
StoreBufferModel::drainAddr(ProcId proc, Addr addr)
{
    auto &buf = buffers_.at(proc);
    for (std::size_t i = 0; i < buf.size(); ++i) {
        if (buf[i].addr == addr) {
            if (policy_.fifoDrain) {
                // TSO: everything older must become visible first.
                for (std::size_t k = 0; k <= i; ++k)
                    drainEntry(proc, 0);
            } else {
                // Ordering fences still apply to scripted drains:
                // flush earlier-epoch entries before the target.
                const std::uint32_t epoch = buf[i].epoch;
                std::size_t k = 0;
                while (k < buf.size()) {
                    if (buf[k].epoch < epoch)
                        drainEntry(proc, k);
                    else
                        ++k;
                }
                for (std::size_t j = 0; j < buf.size(); ++j) {
                    if (buf[j].addr == addr) {
                        drainEntry(proc, j); // oldest first: coherence
                        break;
                    }
                }
            }
            return;
        }
    }
}

void
StoreBufferModel::drainAll()
{
    for (ProcId p = 0; p < buffers_.size(); ++p)
        drainProc(p);
}

std::size_t
StoreBufferModel::pendingStores(ProcId proc) const
{
    return buffers_.at(proc).size();
}

Value
StoreBufferModel::globalValue(Addr addr) const
{
    return addr < memory_.size() ? memory_[addr] : 0;
}

} // namespace wmr
