/**
 * @file
 * Unit tests of the SC model checker (ground-truth explorer) and the
 * constructive SCP witness.
 */

#include <gtest/gtest.h>

#include "mc/explorer.hh"
#include "mc/scp_witness.hh"
#include "prog/builder.hh"
#include "workload/patterns.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

TEST(Explorer, SingleThreadHasOneExecution)
{
    ThreadBuilder t;
    t.storei(0, 1).load(1, 0).halt();
    ProgramBuilder pb;
    pb.thread(t);
    const auto truth = exploreScExecutions(pb.build());
    EXPECT_TRUE(truth.exhaustive);
    EXPECT_EQ(truth.executions, 1u);
    EXPECT_FALSE(truth.anyDataRace);
}

TEST(Explorer, CountsInterleavingsOfIndependentOps)
{
    // Two procs, one memory op each, different addresses: exactly 2
    // interleavings, no races.
    ProgramBuilder pb;
    ThreadBuilder a, b;
    a.storei(0, 1).halt();
    b.storei(1, 1).halt();
    pb.thread(a).thread(b);
    const auto truth = exploreScExecutions(pb.build());
    EXPECT_TRUE(truth.exhaustive);
    EXPECT_EQ(truth.executions, 2u);
    EXPECT_FALSE(truth.anyDataRace);
}

TEST(Explorer, Figure1aAlwaysRaces)
{
    const auto truth = exploreScExecutions(figure1a());
    EXPECT_TRUE(truth.exhaustive);
    // 2 ops vs 2 ops: C(4,2) = 6 interleavings.
    EXPECT_EQ(truth.executions, 6u);
    EXPECT_TRUE(truth.anyDataRace);
    // The race set includes (P0 pc0, P1 pc1) = write x / read x and
    // (P0 pc1, P1 pc0) = write y / read y.
    EXPECT_TRUE(truth.races.count(
        StaticRace::make({0, 0}, {1, 1})));
    EXPECT_TRUE(truth.races.count(
        StaticRace::make({0, 1}, {1, 0})));
}

TEST(Explorer, Figure1bIsDataRaceFreeProgram)
{
    const auto truth = exploreScExecutions(figure1b());
    EXPECT_TRUE(truth.exhaustive);
    EXPECT_GE(truth.executions, 2u);
    EXPECT_TRUE(truth.dataRaceFree());
}

TEST(Explorer, LockedCounterIsDataRaceFreeProgram)
{
    const auto truth = exploreScExecutions(
        lockedCounter(2, 1), {.maxExecutions = 200'000});
    EXPECT_TRUE(truth.exhaustive);
    EXPECT_TRUE(truth.dataRaceFree());
}

TEST(Explorer, RacyCounterHasRacesInSomeExecution)
{
    const auto truth =
        exploreScExecutions(lockedCounter(2, 1, /*racy=*/true));
    EXPECT_TRUE(truth.exhaustive);
    EXPECT_TRUE(truth.anyDataRace);
}

TEST(Explorer, ExecutionLimitRespected)
{
    const auto truth = exploreScExecutions(
        lockedCounter(3, 2), {.maxExecutions = 50});
    EXPECT_FALSE(truth.exhaustive);
    EXPECT_LE(truth.executions, 50u);
}

TEST(Explorer, CallbackCanStopEarly)
{
    std::uint64_t seen = 0;
    exploreScExecutions(figure1a(), {},
                        [&](const ExecutionResult &) {
                            ++seen;
                            return seen < 3;
                        });
    EXPECT_EQ(seen, 3u);
}

TEST(Explorer, CallbackReceivesCompleteScExecutions)
{
    exploreScExecutions(figure1b(), {},
                        [](const ExecutionResult &res) {
                            EXPECT_TRUE(res.completed);
                            EXPECT_EQ(res.model, ModelKind::SC);
                            EXPECT_EQ(res.firstStaleRead, kNoOp);
                            // P2 always reads x==1, y==1 (race-free).
                            EXPECT_EQ(res.finalRegs[1][1], 1);
                            EXPECT_EQ(res.finalRegs[1][2], 1);
                            return true;
                        });
}

TEST(Explorer, RaceFeasibility)
{
    // Fig 1a: write-x/read-x race is feasible on SC.
    EXPECT_TRUE(raceFeasibleOnSc(figure1a(),
                                 StaticRace::make({0, 0}, {1, 1})));
    // A made-up pair that never races: read y vs read x sites.
    EXPECT_FALSE(raceFeasibleOnSc(figure1a(),
                                  StaticRace::make({1, 0}, {1, 1})));
}

TEST(Explorer, DekkerRacesOnSc)
{
    const auto truth = exploreScExecutions(dekkerDataFlags());
    EXPECT_TRUE(truth.exhaustive);
    EXPECT_TRUE(truth.anyDataRace);
}

TEST(Witness, CleanExecutionReplaysWholly)
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 5;
    const Program prog = figure1b();
    const auto weak = runProgram(prog, opts);
    ASSERT_EQ(weak.firstStaleRead, kNoOp);
    const auto w = buildScpWitness(prog, weak);
    EXPECT_TRUE(w.prefixMatched);
    EXPECT_EQ(w.prefixOps, weak.ops.size());
    EXPECT_TRUE(w.eseqRaces.empty());
}

TEST(Witness, StaleExecutionPrefixReplays)
{
    const auto sc = stageFigure2bExecution({.regionSize = 6,
                                            .staleOffset = 3});
    ASSERT_NE(sc.result.firstStaleRead, kNoOp);
    const auto w = buildScpWitness(sc.program, sc.result);
    EXPECT_TRUE(w.prefixMatched);
    EXPECT_EQ(w.prefixOps, sc.result.firstStaleRead);
    EXPECT_TRUE(w.eseq.completed);
    EXPECT_EQ(w.eseq.firstStaleRead, kNoOp); // it IS an SC execution
}

TEST(Witness, EseqExhibitsTheFirstPartitionRace)
{
    // Theorem 4.2, constructively: the Q/QEmpty race of the staged
    // figure-2b execution occurs in Eseq too.
    const auto sc = stageFigure2bExecution({.regionSize = 6,
                                            .staleOffset = 3});
    const auto w = buildScpWitness(sc.program, sc.result);
    ASSERT_TRUE(w.prefixMatched);
    // P1 pc1 = store Q; P2 pc2 = load Q.  (pc0 is P1's movi; P2's
    // pc0/pc1 are the QEmpty load and branch.)
    bool found = false;
    for (const auto &r : w.eseqRaces) {
        found |= (r.x.proc == 0 && r.y.proc == 1) ||
                 (r.x.proc == 1 && r.y.proc == 0);
    }
    EXPECT_TRUE(found);
}

TEST(Witness, Figure1aViolationWitness)
{
    const auto sc = stageFigure1aViolation();
    ASSERT_NE(sc.result.firstStaleRead, kNoOp);
    const auto w = buildScpWitness(sc.program, sc.result);
    EXPECT_TRUE(w.prefixMatched);
    EXPECT_TRUE(w.eseq.completed);
    // Eseq of figure 1a still exhibits its data races.
    EXPECT_FALSE(w.eseqRaces.empty());
}

} // namespace
} // namespace wmr
