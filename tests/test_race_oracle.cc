/**
 * @file
 * Property tests of the detection pipeline against brute force.
 *
 * The production path answers "is this pair hb1-ordered" with the
 * per-processor clock oracle over the SCC condensation, enumerates
 * candidates per address shard, and partitions races by G'-SCC.
 * Every one of those layers has a trivially correct O(n^2)
 * counterpart: the transitive closure computed by DFS from every
 * node.  This file cross-checks, over seeded random-program traces
 * and synthetic traces:
 *
 *  - ReachOracle.*:     reaches()/ordered() equal the hb1 closure on
 *                       ALL event pairs;
 *  - RaceOracle.*:      findRaces() (serial and sharded) returns
 *                       exactly the conflicting-unordered pairs, with
 *                       exactly the conflict addresses;
 *  - PartitionOracle.*: partition membership equals mutual G'-closure
 *                       reachability and first flags equal Def. 4.1
 *                       computed by brute force;
 *  - EngineOracle.*:    the single-pass clock engines (src/engines)
 *                       equal their declarative closures — SHB's race
 *                       set is exactly the hb1-unordered conflicting
 *                       pairs, WCP's is the unordered set of the
 *                       closure of po plus conditional release edges
 *                       (release → first region access conflicting
 *                       with the releaser's region footprint), and
 *                       the containment races(shb) ⊆ races(wcp)
 *                       holds oracle-side too — over the figure
 *                       programs, the shared trace spread, and 200+
 *                       seeded random small traces;
 *  - RobustnessOracle.*: checkRobustness() (linear acyclicity of
 *                       po u rf u co u fr) equals a brute-force
 *                       backtracking search for an SC-equivalent
 *                       total order — over 200+ seeded executions
 *                       across all seven models and both
 *                       realizations, with zero disagreements, and
 *                       the reported first non-SC operation is the
 *                       exact prefix boundary the brute force finds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "detect/analysis.hh"
#include "detect/robustness.hh"
#include "engines/clock_hist.hh"
#include "engines/family.hh"
#include "hb/hb_graph.hh"
#include "hb/reachability.hh"
#include "sim/executor.hh"
#include "trace/event.hh"
#include "workload/patterns.hh"
#include "workload/random_gen.hh"
#include "workload/synthetic_trace.hh"

namespace wmr {
namespace {

/** O(V*E) transitive closure: reach[a][b] == path a ->* b (and
 *  reach[a][a] always).  Handles cycles — plain DFS. */
std::vector<std::vector<char>>
bruteClosure(const AdjList &adj)
{
    const std::size_t n = adj.size();
    std::vector<std::vector<char>> reach(
        n, std::vector<char>(n, 0));
    std::vector<std::uint32_t> stack;
    for (std::size_t s = 0; s < n; ++s) {
        auto &row = reach[s];
        stack.assign(1, static_cast<std::uint32_t>(s));
        row[s] = 1;
        while (!stack.empty()) {
            const std::uint32_t v = stack.back();
            stack.pop_back();
            for (const std::uint32_t w : adj[v]) {
                if (!row[w]) {
                    row[w] = 1;
                    stack.push_back(w);
                }
            }
        }
    }
    return reach;
}

/** The inputs every oracle check needs, built once per trace. */
struct TraceUnderTest
{
    ExecutionTrace trace;
    HbGraph hb;
    ReachabilityIndex reach;
    std::vector<std::vector<char>> closure; ///< hb1 brute closure

    explicit TraceUnderTest(ExecutionTrace t)
        : trace(std::move(t)), hb(trace), reach(hb, trace),
          closure(bruteClosure(hb.adjacency()))
    {
    }

    bool
    bruteOrdered(EventId a, EventId b) const
    {
        return closure[a][b] || closure[b][a];
    }
};

/** A spread of trace shapes: weak-model program runs (racy and
 *  race-free) plus synthetic hot-conflict traces. */
std::vector<ExecutionTrace>
oracleTraces()
{
    std::vector<ExecutionTrace> out;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Program prog = seed % 2 == 0
                                 ? randomRacyProgram(seed)
                                 : randomRaceFreeProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        out.push_back(
            buildTrace(runProgram(prog, opts),
                       {.keepMemberOps = true}));
    }
    for (std::uint64_t seed = 30; seed < 34; ++seed) {
        SyntheticTraceOptions opts;
        opts.procs = 3 + static_cast<ProcId>(seed % 3);
        opts.eventsPerProc = 40;
        opts.memWords = 48;
        opts.hotFraction = 0.6;
        opts.seed = seed;
        out.push_back(makeSyntheticTrace(opts));
    }
    return out;
}

/** Brute-force findRaces: every conflicting pair the closure leaves
 *  unordered, with its conflict addresses, canonically sorted. */
std::vector<DataRace>
bruteRaces(const TraceUnderTest &t, bool includeSyncSync)
{
    const auto &events = t.trace.events();
    std::vector<DataRace> out;
    for (EventId a = 0; a < events.size(); ++a) {
        for (EventId b = a + 1; b < events.size(); ++b) {
            const bool isData =
                events[a].kind == EventKind::Computation ||
                events[b].kind == EventKind::Computation;
            if (!isData && !includeSyncSync)
                continue;
            if (!eventsConflict(events[a], events[b]))
                continue;
            if (t.bruteOrdered(a, b))
                continue;
            DataRace r;
            r.a = a;
            r.b = b;
            r.addrs = conflictAddrs(events[a], events[b]);
            std::sort(r.addrs.begin(), r.addrs.end());
            r.isDataRace = isData;
            out.push_back(std::move(r));
        }
    }
    return out; // (a, b) ascending by construction
}

// ---------------------------------------------------------------
// ReachOracle
// ---------------------------------------------------------------

TEST(ReachOracle, AllPairsMatchBruteClosure)
{
    for (auto &trace : oracleTraces()) {
        const TraceUnderTest t(std::move(trace));
        const EventId n =
            static_cast<EventId>(t.trace.events().size());
        ASSERT_GT(n, 0u);
        for (EventId a = 0; a < n; ++a) {
            for (EventId b = 0; b < n; ++b) {
                ASSERT_EQ(t.reach.reaches(a, b),
                          static_cast<bool>(t.closure[a][b]))
                    << "reaches(" << a << ", " << b << ")";
                ASSERT_EQ(t.reach.ordered(a, b), t.bruteOrdered(a, b))
                    << "ordered(" << a << ", " << b << ")";
            }
        }
    }
}

// ---------------------------------------------------------------
// RaceOracle
// ---------------------------------------------------------------

void
expectSameRaces(const std::vector<DataRace> &got,
                const std::vector<DataRace> &want, const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].a, want[i].a) << what << " race " << i;
        EXPECT_EQ(got[i].b, want[i].b) << what << " race " << i;
        EXPECT_EQ(got[i].addrs, want[i].addrs)
            << what << " race " << i;
        EXPECT_EQ(got[i].isDataRace, want[i].isDataRace)
            << what << " race " << i;
    }
}

TEST(RaceOracle, SerialAndShardedMatchBruteForce)
{
    for (auto &trace : oracleTraces()) {
        const TraceUnderTest t(std::move(trace));
        const auto expected = bruteRaces(t, false);
        expectSameRaces(findRaces(t.trace, t.reach, {}, 1), expected,
                        "serial");
        expectSameRaces(findRaces(t.trace, t.reach, {}, 4), expected,
                        "sharded");
    }
}

TEST(RaceOracle, SyncSyncGeneralRacesMatchToo)
{
    RaceFinderOptions opts;
    opts.includeSyncSyncRaces = true;
    for (auto &trace : oracleTraces()) {
        const TraceUnderTest t(std::move(trace));
        const auto expected = bruteRaces(t, true);
        expectSameRaces(findRaces(t.trace, t.reach, opts, 1),
                        expected, "serial+syncsync");
        expectSameRaces(findRaces(t.trace, t.reach, opts, 8),
                        expected, "sharded+syncsync");
    }
}

// ---------------------------------------------------------------
// PartitionOracle
// ---------------------------------------------------------------

TEST(PartitionOracle, MembershipAndFirstFlagsMatchBruteForce)
{
    for (auto &trace : oracleTraces()) {
        for (const unsigned threads : {1u, 4u}) {
            AnalysisOptions aopts;
            aopts.threads = threads;
            const DetectionResult det = analyzeTrace(trace, aopts);
            const auto &races = det.races();
            const auto &parts = det.partitions();

            // Brute closure of G' = hb1 + doubly directed race edges.
            AdjList aug = det.hbGraph().adjacency();
            for (const auto &r : races) {
                aug[r.a].push_back(r.b);
                aug[r.b].push_back(r.a);
            }
            const auto closure = bruteClosure(aug);

            // Same partition <=> mutually reachable in G'.
            for (RaceId r = 0; r < races.size(); ++r) {
                for (RaceId s = 0; s < races.size(); ++s) {
                    const bool sameBrute =
                        closure[races[r].a][races[s].a] &&
                        closure[races[s].a][races[r].a];
                    EXPECT_EQ(parts.partitionOf[r] ==
                                  parts.partitionOf[s],
                              sameBrute)
                        << "races " << r << ", " << s
                        << " at threads=" << threads;
                }
            }

            // First flags (Def. 4.1): a data-race partition is first
            // iff no OTHER data-race partition precedes it, where
            // partition j precedes i iff a G' path leads from j's
            // events to i's.
            for (std::size_t i = 0; i < parts.partitions.size();
                 ++i) {
                const auto &pi = parts.partitions[i];
                if (!pi.hasDataRace) {
                    EXPECT_FALSE(pi.first);
                    continue;
                }
                bool bruteFirst = true;
                for (std::size_t j = 0;
                     j < parts.partitions.size() && bruteFirst;
                     ++j) {
                    const auto &pj = parts.partitions[j];
                    if (j == i || !pj.hasDataRace)
                        continue;
                    const EventId from =
                        races[pj.races.front()].a;
                    const EventId to = races[pi.races.front()].a;
                    if (closure[from][to])
                        bruteFirst = false;
                }
                EXPECT_EQ(pi.first, bruteFirst)
                    << "partition " << i << " at threads=" << threads;
            }

            // firstPartitions lists exactly the flagged ones.
            std::vector<std::uint32_t> flagged;
            for (std::size_t i = 0; i < parts.partitions.size();
                 ++i) {
                if (parts.partitions[i].first)
                    flagged.push_back(
                        static_cast<std::uint32_t>(i));
            }
            EXPECT_EQ(parts.firstPartitions, flagged);
        }
    }
}

// ---------------------------------------------------------------
// EngineOracle
// ---------------------------------------------------------------

/** Run one chain engine over @p trace via the family runner. */
engines::EngineVerdict
runChainEngine(const ExecutionTrace &trace, const char *name)
{
    const auto kinds = engines::parseEngineSelection(name);
    EXPECT_TRUE(kinds.has_value()) << name;
    engines::EngineFamilyOptions fopts;
    fopts.kinds = *kinds;
    fopts.threads = 1;
    const engines::EngineFamilyResult fam =
        engines::runEngineFamily(trace, fopts);
    EXPECT_EQ(fam.verdicts.size(), 1u) << name;
    return fam.verdicts.front();
}

void
expectSameEngineRaces(const std::vector<engines::EngineRace> &got,
                      const std::vector<DataRace> &want,
                      const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].a, want[i].a) << what << " race " << i;
        EXPECT_EQ(got[i].b, want[i].b) << what << " race " << i;
        EXPECT_EQ(got[i].addrs, want[i].addrs)
            << what << " race " << i;
        EXPECT_EQ(got[i].isDataRace, want[i].isDataRace)
            << what << " race " << i;
    }
}

/**
 * Brute-force WCP closure oracle.  Build the declarative WCP edge
 * set — po plus, for each paired release→acquire whose pending join
 * the acquirer's region consumes, one edge from the release to the
 * FIRST computation event after the acquire conflicting with the
 * release's closed-region footprint — then DFS-close it and
 * enumerate the conflicting unordered pairs exactly like
 * bruteRaces() (sync-sync pairs excluded).  O(n^2), no clocks: the
 * engine's one-directional clock test is what this validates.
 */
std::vector<DataRace>
bruteWcpRaces(const TraceUnderTest &t)
{
    const auto &events = t.trace.events();
    const std::size_t n = events.size();
    AdjList adj(n);

    struct Footprint
    {
        std::unordered_set<Addr> reads, writes;
    };
    struct PerProc
    {
        EventId last = kNoEvent;   ///< latest event, for po edges
        Footprint region;          ///< accesses since last sync
        bool pending = false;      ///< armed release join
        EventId pendingRel = kNoEvent;
    };
    std::unordered_map<ProcId, PerProc> procs;
    std::unordered_map<EventId, Footprint> relSnap;

    std::vector<Addr> writes, reads;
    for (EventId id = 0; id < n; ++id) {
        const Event &ev = events[id];
        PerProc &ps = procs[ev.proc];
        if (ps.last != kNoEvent)
            adj[ps.last].push_back(id);
        ps.last = id;

        engines::detail::eventAccesses(ev, writes, reads);
        const bool isSync = ev.kind == EventKind::Sync;

        if (!isSync && ps.pending) {
            const Footprint &rel = relSnap.at(ps.pendingRel);
            bool conflict = false;
            for (const Addr a : writes) {
                if (rel.writes.count(a) || rel.reads.count(a))
                    conflict = true;
            }
            for (const Addr a : reads) {
                if (rel.writes.count(a))
                    conflict = true;
            }
            if (conflict) {
                adj[ps.pendingRel].push_back(id);
                ps.pending = false;
            }
        }

        if (isSync) {
            relSnap.emplace(id, std::move(ps.region));
            ps.region = Footprint{};
            ps.pending = false;
            if (ev.pairedRelease != kNoEvent &&
                relSnap.count(ev.pairedRelease)) {
                ps.pending = true;
                ps.pendingRel = ev.pairedRelease;
            }
        } else {
            for (const Addr a : writes)
                ps.region.writes.insert(a);
            for (const Addr a : reads)
                ps.region.reads.insert(a);
        }
    }

    const auto closure = bruteClosure(adj);
    std::vector<DataRace> out;
    for (EventId a = 0; a < n; ++a) {
        for (EventId b = a + 1; b < n; ++b) {
            if (events[a].kind == EventKind::Sync &&
                events[b].kind == EventKind::Sync)
                continue;
            if (!eventsConflict(events[a], events[b]))
                continue;
            if (closure[a][b] || closure[b][a])
                continue;
            DataRace r;
            r.a = a;
            r.b = b;
            r.addrs = conflictAddrs(events[a], events[b]);
            std::sort(r.addrs.begin(), r.addrs.end());
            r.isDataRace = true;
            out.push_back(std::move(r));
        }
    }
    return out;
}

/** Brute per-variable first race: for each address, the race whose
 *  later endpoint completes earliest (minimal (b, a)). */
std::vector<std::pair<Addr, std::uint32_t>>
bruteFirstRacePerVar(const std::vector<engines::EngineRace> &races)
{
    std::vector<std::pair<Addr, std::uint32_t>> out;
    std::unordered_set<Addr> addrs;
    for (const auto &r : races)
        for (const Addr a : r.addrs)
            addrs.insert(a);
    for (const Addr a : addrs) {
        std::uint32_t best = 0;
        bool have = false;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(races.size()); ++i) {
            const auto &r = races[i];
            if (std::find(r.addrs.begin(), r.addrs.end(), a) ==
                r.addrs.end())
                continue;
            if (!have ||
                std::make_pair(r.b, r.a) <
                    std::make_pair(races[best].b, races[best].a)) {
                best = i;
                have = true;
            }
        }
        out.emplace_back(a, best);
    }
    std::sort(out.begin(), out.end());
    return out;
}

/** One full engine-vs-oracle check of @p trace. */
void
checkEnginesAgainstOracles(ExecutionTrace trace, const char *what)
{
    const TraceUnderTest t(std::move(trace));

    // SHB order IS hb1: its race set must equal the brute
    // hb1-unordered conflicting pairs, bit for bit.
    const engines::EngineVerdict shb =
        runChainEngine(t.trace, "shb");
    const auto shbWant = bruteRaces(t, false);
    expectSameEngineRaces(shb.races, shbWant, what);
    EXPECT_EQ(shb.firstRacePerVar, bruteFirstRacePerVar(shb.races))
        << what;

    // WCP equals its declarative conditional-release closure.
    const engines::EngineVerdict wcp =
        runChainEngine(t.trace, "wcp");
    const auto wcpWant = bruteWcpRaces(t);
    expectSameEngineRaces(wcp.races, wcpWant, what);

    // Containment holds between the ORACLES too — the WCP edge set
    // is a subset of hb1's, so every hb1-unordered pair stays
    // wcp-unordered.
    std::unordered_set<std::uint64_t> wcpPairs;
    for (const auto &r : wcpWant)
        wcpPairs.insert((static_cast<std::uint64_t>(r.a) << 32) |
                        r.b);
    for (const auto &r : shbWant) {
        EXPECT_TRUE(wcpPairs.count(
            (static_cast<std::uint64_t>(r.a) << 32) | r.b))
            << what << ": shb race (" << r.a << ", " << r.b
            << ") missing from wcp oracle";
    }
}

TEST(EngineOracle, ChainEnginesMatchBruteForceOnTraceSpread)
{
    for (auto &trace : oracleTraces())
        checkEnginesAgainstOracles(std::move(trace), "spread");
}

TEST(EngineOracle, ChainEnginesMatchBruteForceOnFigurePrograms)
{
    const std::pair<const char *, Program> programs[] = {
        {"figure1a", figure1a()},
        {"figure1b", figure1b()},
        {"figure2Queue", figure2Queue()},
    };
    for (const auto &[label, prog] : programs) {
        for (const ModelKind model : kAllModels) {
            ExecOptions opts;
            opts.model = model;
            opts.seed = 7;
            checkEnginesAgainstOracles(
                buildTrace(runProgram(prog, opts),
                           {.keepMemberOps = true}),
                label);
        }
    }
}

TEST(EngineOracle, ChainEnginesMatchBruteForceOnRandomSmallTraces)
{
    // 200+ seeded small traces: synthetic shapes (dense sync
    // pairing so the conditional WCP join actually fires) plus
    // weak-model program runs.
    std::size_t checked = 0;
    for (std::uint64_t seed = 100; seed < 240; ++seed) {
        SyntheticTraceOptions opts;
        opts.procs = 2 + static_cast<ProcId>(seed % 3);
        opts.eventsPerProc = 12 + static_cast<std::uint32_t>(
                                      seed % 13);
        opts.memWords = 16;
        opts.syncWords = 4;
        opts.syncFraction = 0.3;
        opts.hotFraction = 0.7;
        opts.hotWords = 4;
        opts.seed = seed;
        checkEnginesAgainstOracles(makeSyntheticTrace(opts),
                                   "synthetic");
        ++checked;
    }
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const Program prog = seed % 2 == 0
                                 ? randomRacyProgram(seed)
                                 : randomRaceFreeProgram(seed);
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.seed = seed;
        checkEnginesAgainstOracles(
            buildTrace(runProgram(prog, opts),
                       {.keepMemberOps = true}),
            "random-program");
        ++checked;
    }
    EXPECT_GE(checked, 200u);
}

// ---------------------------------------------------------------
// RobustnessOracle: checkRobustness against a brute-force search
// for an SC-equivalent total order.
// ---------------------------------------------------------------

/**
 * Brute-force SC-equivalence (trace equivalence) oracle: does ANY
 * total order of the ops respect program order, place every write to
 * an address in the witnessed coherence order, and place every read
 * while its observed write is the latest placed write to its
 * address?  Memoized backtracking over per-processor frontiers —
 * the set of placed ops is exactly determined by the frontier
 * vector, so dead-state memoization bounds the search by
 * prod_p(|po_p| + 1) states regardless of branching.
 *
 * Mirrors buildGraph()'s co construction exactly: the visibility
 * witness deduplicated and restricted to the op range, with any
 * missed writes appended in issue order.
 */
bool
bruteScEquivalent(const std::vector<MemOp> &ops,
                  const std::vector<OpId> &visibility)
{
    const std::size_t n = ops.size();
    if (n == 0)
        return true;

    // Per-processor program-order streams.
    std::vector<std::vector<OpId>> po;
    for (OpId id = 0; id < n; ++id) {
        if (ops[id].proc >= po.size())
            po.resize(ops[id].proc + 1);
        po[ops[id].proc].push_back(id);
    }

    // coRank[w] = position of write w in its address's co sequence.
    std::vector<bool> witnessed(n, false);
    std::vector<OpId> vis;
    for (const OpId id : visibility) {
        if (id < n && !witnessed[id]) {
            witnessed[id] = true;
            vis.push_back(id);
        }
    }
    for (OpId id = 0; id < n; ++id) {
        if (ops[id].kind == OpKind::Write && !witnessed[id])
            vis.push_back(id);
    }
    std::unordered_map<Addr, std::size_t> coLen;
    std::vector<std::size_t> coRank(n, 0);
    for (const OpId id : vis)
        coRank[id] = coLen[ops[id].addr]++;

    // Search state, mutated in place and undone on backtrack.
    std::vector<std::size_t> frontier(po.size(), 0);
    std::unordered_map<Addr, std::size_t> writesPlaced;
    std::unordered_map<Addr, OpId> lastWriter;
    std::unordered_set<std::uint64_t> dead;

    const auto stateKey = [&]() {
        std::uint64_t key = 0;
        for (const std::size_t f : frontier)
            key = key * 131 + f;
        return key;
    };
    const auto placeable = [&](OpId id) {
        const MemOp &op = ops[id];
        if (op.kind == OpKind::Write)
            return coRank[id] == writesPlaced[op.addr];
        const auto it = lastWriter.find(op.addr);
        const OpId last = it == lastWriter.end() ? kNoOp : it->second;
        return last == op.observedWrite;
    };

    std::size_t placed = 0;
    // Explicit DFS would obscure the undo logic; recursion depth is
    // bounded by n (tiny here).
    const std::function<bool()> search = [&]() -> bool {
        if (placed == n)
            return true;
        if (dead.count(stateKey()))
            return false;
        for (std::size_t p = 0; p < po.size(); ++p) {
            if (frontier[p] == po[p].size())
                continue;
            const OpId id = po[p][frontier[p]];
            if (!placeable(id))
                continue;
            const MemOp &op = ops[id];
            const bool isWrite = op.kind == OpKind::Write;
            const OpId savedWriter =
                lastWriter.count(op.addr) ? lastWriter[op.addr]
                                          : kNoOp;
            ++frontier[p];
            ++placed;
            if (isWrite) {
                ++writesPlaced[op.addr];
                lastWriter[op.addr] = id;
            }
            if (search())
                return true;
            --frontier[p];
            --placed;
            if (isWrite) {
                --writesPlaced[op.addr];
                if (savedWriter == kNoOp)
                    lastWriter.erase(op.addr);
                else
                    lastWriter[op.addr] = savedWriter;
            }
        }
        dead.insert(stateKey());
        return false;
    };
    return search();
}

/** The small random programs the robustness sweep executes: pure
 *  data ops (no locks), 2-3 procs, a handful of ops each. */
Program
robustnessSweepProgram(std::uint64_t seed)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = static_cast<ProcId>(2 + seed % 2);
    cfg.blocksPerProc = 1;
    cfg.opsPerBlock = 3;
    cfg.dataWords = 2;
    cfg.numLocks = 1;
    cfg.unlockedProb = 1.0;
    return randomProgram(cfg);
}

TEST(RobustnessOracle, MatchesBruteForceOnSeededTraces)
{
    std::size_t checked = 0;
    std::size_t violations = 0;
    for (std::uint64_t progSeed = 0; progSeed < 12; ++progSeed) {
        const Program p = robustnessSweepProgram(progSeed);
        for (const ModelKind model : kAllModels) {
            for (const Realization realization : kAllRealizations) {
                for (std::uint64_t seed = 0; seed < 2; ++seed) {
                    for (const double laziness : {0.5, 1.0}) {
                        ExecOptions opts;
                        opts.model = model;
                        opts.realization = realization;
                        opts.seed = seed;
                        opts.drainLaziness = laziness;
                        const auto res = runProgram(p, opts);
                        if (!res.completed || res.ops.size() > 24)
                            continue;
                        const auto verdict = checkRobustness(res);
                        EXPECT_EQ(verdict.robust,
                                  bruteScEquivalent(
                                      res.ops, res.visibilityOrder))
                            << "prog " << progSeed << " "
                            << modelName(model) << " seed " << seed
                            << " laziness " << laziness;
                        ++checked;
                        violations += !verdict.robust;
                    }
                }
            }
        }
    }
    EXPECT_GE(checked, 200u);
    // The sweep must exercise both outcomes or the comparison is
    // vacuous.
    EXPECT_GT(violations, 0u);
    EXPECT_LT(violations, checked);
}

TEST(RobustnessOracle, FirstViolationIsExactPrefixBoundary)
{
    // For every non-robust execution, the brute force agrees that
    // the prefix up to (excluding) violatingOp still has an
    // SC-equivalent and the prefix including it does not.
    std::size_t boundaries = 0;
    const Program p = dekkerDataFlags();
    for (const ModelKind model :
         {ModelKind::WO, ModelKind::TSO, ModelKind::PSO}) {
        for (std::uint64_t seed = 0; seed < 6; ++seed) {
            ExecOptions opts;
            opts.model = model;
            opts.seed = seed;
            opts.drainLaziness = 1.0;
            const auto res = runProgram(p, opts);
            ASSERT_TRUE(res.completed);
            const auto verdict = checkRobustness(res);
            if (verdict.robust)
                continue;
            ASSERT_NE(verdict.violatingOp, kNoOp);
            const std::vector<MemOp> upTo(
                res.ops.begin(),
                res.ops.begin() + verdict.violatingOp + 1);
            EXPECT_FALSE(
                bruteScEquivalent(upTo, res.visibilityOrder))
                << modelName(model) << " seed " << seed;
            const std::vector<MemOp> before(
                res.ops.begin(),
                res.ops.begin() + verdict.violatingOp);
            EXPECT_TRUE(
                bruteScEquivalent(before, res.visibilityOrder))
                << modelName(model) << " seed " << seed;
            ++boundaries;
        }
    }
    EXPECT_GT(boundaries, 0u);
}

TEST(RobustnessOracle, NoStaleReadsImpliesRobust)
{
    // The issue order itself is the SC witness when nothing went
    // stale — the containment documented in robustness.hh, checked
    // against both the linear checker and the brute force.
    for (std::uint64_t progSeed = 0; progSeed < 8; ++progSeed) {
        const Program p = robustnessSweepProgram(progSeed);
        for (const ModelKind model : kAllModels) {
            ExecOptions opts;
            opts.model = model;
            opts.seed = progSeed + 13;
            opts.drainLaziness = 0.5;
            const auto res = runProgram(p, opts);
            if (!res.completed || res.staleReads != 0)
                continue;
            EXPECT_TRUE(checkRobustness(res).robust)
                << "prog " << progSeed << " " << modelName(model);
            if (res.ops.size() <= 24) {
                EXPECT_TRUE(bruteScEquivalent(res.ops,
                                              res.visibilityOrder));
            }
        }
    }
}

} // namespace
} // namespace wmr
