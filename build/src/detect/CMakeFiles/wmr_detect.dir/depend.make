# Empty dependencies file for wmr_detect.
# This may be replaced when dependencies are built.
