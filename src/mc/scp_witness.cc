#include "mc/scp_witness.hh"

#include <algorithm>

#include "detect/analysis.hh"
#include "sim/scheduler.hh"

namespace wmr {

ScpWitness
buildScpWitness(const Program &prog, const ExecutionResult &weak,
                std::uint64_t continuationSeed)
{
    ScpWitness w;

    // Prefix = operations before the first stale read (all of them
    // when the execution stayed on the SC witness).
    const OpId end = weak.firstStaleRead == kNoOp
                         ? static_cast<OpId>(weak.ops.size())
                         : weak.firstStaleRead;
    w.prefixOps = end;

    // Scheduling script: all picks strictly before the pick that
    // issued the first stale read.
    std::vector<ProcId> script;
    if (weak.firstStaleRead == kNoOp) {
        script = weak.stepOrder;
    } else {
        const std::uint64_t cut = weak.ops[weak.firstStaleRead].step;
        script.assign(weak.stepOrder.begin(),
                      weak.stepOrder.begin() +
                          static_cast<std::ptrdiff_t>(cut));
    }

    ScriptedScheduler sched(std::move(script));
    ExecOptions opts;
    opts.model = ModelKind::SC;
    opts.seed = continuationSeed;
    opts.scheduler = &sched;
    w.eseq = runProgram(prog, opts);

    // Verify the replay reproduced the SCP operations exactly.
    w.prefixMatched = w.eseq.ops.size() >= end;
    for (OpId i = 0; w.prefixMatched && i < end; ++i) {
        const MemOp &a = weak.ops[i];
        const MemOp &b = w.eseq.ops[i];
        w.prefixMatched = a.proc == b.proc && a.pc == b.pc &&
                          a.kind == b.kind && a.addr == b.addr &&
                          a.value == b.value && a.sync == b.sync;
    }

    // Collect the static data races of Eseq.
    DetectionResult det = analyzeExecution(w.eseq);
    for (RaceId r = 0; r < static_cast<RaceId>(det.races().size());
         ++r) {
        if (!det.races()[r].isDataRace)
            continue;
        const auto pairs = staticPairsOfRace(det, r, w.eseq.ops);
        w.eseqRaces.insert(pairs.begin(), pairs.end());
    }
    return w;
}

} // namespace wmr
