/**
 * @file
 * Tests of the batch analysis pipeline (src/pipeline) and the
 * recoverable trace_io error path it depends on:
 *
 *  - CorruptTrace.*:        truncated/bit-flipped trace bytes come
 *                           back as errors, never aborts or OOB reads;
 *  - CorpusScanner.*:       directory and manifest discovery;
 *  - BatchPipeline.*:       graceful degradation, fail-fast, metrics;
 *  - BatchDeterminism.*:    text and JSON reports are byte-identical
 *                           for 1 and 8 worker threads (this suite is
 *                           also the ThreadSanitizer CTest entry);
 *  - BatchSalvage.*:        damaged segmented traces recovered (or
 *                           quarantined) per trace;
 *  - CheckpointJournal.*:   crash-tolerant --checkpoint resume;
 *  - AnalysisReentrancy.*:  analyzeTrace() is state-free across
 *                           threads.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "detect/report.hh"
#include "pipeline/aggregate_report.hh"
#include "pipeline/batch_runner.hh"
#include "pipeline/checkpoint.hh"
#include "pipeline/work_queue.hh"
#include "trace/segmented_io.hh"
#include "sim/executor.hh"
#include "trace/trace_io.hh"
#include "workload/random_gen.hh"

namespace fs = std::filesystem;

namespace wmr {
namespace {

/** A fresh temp directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                (tag + "." + std::to_string(::getpid())))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

/** Produce one serialized trace from a seeded random program. */
std::vector<std::uint8_t>
makeTraceBytes(std::uint64_t seed, bool racy = true)
{
    const Program prog =
        racy ? randomRacyProgram(seed) : randomRaceFreeProgram(seed);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = seed;
    const auto res = runProgram(prog, opts);
    return serializeTrace(buildTrace(res, {.keepMemberOps = true}));
}

void
writeBytes(const fs::path &path, const std::vector<std::uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
    ASSERT_TRUE(out.good());
}

std::string
traceName(std::size_t i)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t%03zu.trace", i);
    return buf;
}

/**
 * Write a mixed corpus: @p good traces (racy and race-free), one
 * truncated trace and one bad-magic file.  @return total file count.
 */
std::size_t
writeMixedCorpus(const fs::path &dir, std::size_t good)
{
    for (std::size_t i = 0; i < good; ++i) {
        const auto bytes = makeTraceBytes(1000 + i, i % 2 == 0);
        writeBytes(dir / traceName(i), bytes);
    }
    const auto donor = makeTraceBytes(42);
    std::vector<std::uint8_t> truncated(
        donor.begin(), donor.begin() + donor.size() / 2);
    writeBytes(dir / "x_truncated.trace", truncated);
    std::ofstream bad(dir / "y_garbage.trace");
    bad << "this is not a trace";
    bad.close();
    return good + 2;
}

// ---------------------------------------------------------------
// CorruptTrace: the recoverable trace_io parse path.
// ---------------------------------------------------------------

TEST(CorruptTrace, RoundTripStillWorks)
{
    const auto bytes = makeTraceBytes(7);
    const auto res = tryDeserializeTrace(bytes);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GT(res.trace.events().size(), 0u);
    // The fatal() wrapper path parses the same bytes.
    const auto trace = deserializeTrace(bytes);
    EXPECT_EQ(trace.events().size(), res.trace.events().size());
}

TEST(CorruptTrace, EveryStrictTruncationIsAnError)
{
    const auto bytes = makeTraceBytes(11);
    ASSERT_GT(bytes.size(), 32u);
    const std::size_t step =
        std::max<std::size_t>(1, bytes.size() / 64);
    for (std::size_t cut = 0; cut < bytes.size(); cut += step) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + cut);
        const auto res = tryDeserializeTrace(prefix);
        EXPECT_FALSE(res.ok()) << "cut at " << cut << " parsed OK";
        EXPECT_EQ(res.status, TraceIoStatus::FormatError);
        EXPECT_FALSE(res.error.empty());
    }
}

TEST(CorruptTrace, BitFlipsNeverAbort)
{
    const auto bytes = makeTraceBytes(13);
    for (std::size_t pos = 0; pos < bytes.size();
         pos += std::max<std::size_t>(1, bytes.size() / 97)) {
        auto flipped = bytes;
        flipped[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
        // Must return — ok or error — never exit/abort/overrun.
        const auto res = tryDeserializeTrace(flipped);
        if (!res.ok()) {
            EXPECT_FALSE(res.error.empty());
        }
    }
}

TEST(CorruptTrace, BadMagicAndTrailingBytes)
{
    auto bytes = makeTraceBytes(17);
    auto badMagic = bytes;
    badMagic[0] ^= 0xff;
    const auto r1 = tryDeserializeTrace(badMagic);
    ASSERT_FALSE(r1.ok());
    EXPECT_NE(r1.error.find("unrecognized magic"),
              std::string::npos);

    auto trailing = bytes;
    trailing.push_back(0);
    const auto r2 = tryDeserializeTrace(trailing);
    ASSERT_FALSE(r2.ok());
    EXPECT_NE(r2.error.find("trailing"), std::string::npos);
}

TEST(CorruptTrace, OversizedHeaderCountsAreErrorsNotOom)
{
    // Hand-build a header claiming 2^60 processors: must be a
    // recoverable error, not an allocation attempt.
    std::vector<std::uint8_t> bytes = {'W', 'M', 'R', 'T',
                                       'R', 'C', '0', '1'};
    for (int i = 0; i < 8; ++i)
        bytes.push_back(0x80 | 0x7f); // huge varint...
    bytes.push_back(0x0f);            // ...terminated (procs)
    bytes.push_back(0x01);            // memWords
    const auto res = tryDeserializeTrace(bytes);
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error.find("too large"), std::string::npos);
}

TEST(CorruptTrace, MissingFileIsIoError)
{
    const auto res =
        tryReadTraceFile("/nonexistent/dir/nothing.trace");
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status, TraceIoStatus::IoError);
}

// ---------------------------------------------------------------
// CorruptFullOps: the FULL-OP format through the same recoverable
// read path (truncation, bit flips, magic confusion, bad counts).
// ---------------------------------------------------------------

/** Produce ops + their full-op serialization from a seeded run. */
std::vector<MemOp>
makeFullOps(std::uint64_t seed)
{
    const Program prog = randomRacyProgram(seed);
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = seed;
    return runProgram(prog, opts).ops;
}

TEST(CorruptFullOps, RoundTripPreservesEveryField)
{
    const auto ops = makeFullOps(7);
    ASSERT_GT(ops.size(), 0u);
    const auto res = tryDeserializeFullOps(serializeFullOps(ops));
    ASSERT_TRUE(res.ok()) << res.error;
    ASSERT_EQ(res.ops.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        EXPECT_EQ(res.ops[i].id, ops[i].id);
        EXPECT_EQ(res.ops[i].proc, ops[i].proc);
        EXPECT_EQ(res.ops[i].poIndex, ops[i].poIndex);
        EXPECT_EQ(res.ops[i].kind, ops[i].kind);
        EXPECT_EQ(res.ops[i].sync, ops[i].sync);
        EXPECT_EQ(res.ops[i].acquire, ops[i].acquire);
        EXPECT_EQ(res.ops[i].release, ops[i].release);
        EXPECT_EQ(res.ops[i].addr, ops[i].addr);
        EXPECT_EQ(res.ops[i].value, ops[i].value);
        EXPECT_EQ(res.ops[i].observedWrite, ops[i].observedWrite);
        EXPECT_EQ(res.ops[i].tick, ops[i].tick);
    }
}

TEST(CorruptFullOps, EveryStrictTruncationIsAnError)
{
    const auto bytes = serializeFullOps(makeFullOps(11));
    ASSERT_GT(bytes.size(), 32u);
    const std::size_t step =
        std::max<std::size_t>(1, bytes.size() / 64);
    for (std::size_t cut = 0; cut < bytes.size(); cut += step) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + cut);
        const auto res = tryDeserializeFullOps(prefix);
        EXPECT_FALSE(res.ok()) << "cut at " << cut << " parsed OK";
        EXPECT_EQ(res.status, TraceIoStatus::FormatError);
        EXPECT_FALSE(res.error.empty());
    }
}

TEST(CorruptFullOps, BitFlipsNeverAbort)
{
    const auto bytes = serializeFullOps(makeFullOps(13));
    for (std::size_t pos = 0; pos < bytes.size();
         pos += std::max<std::size_t>(1, bytes.size() / 97)) {
        auto flipped = bytes;
        flipped[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
        // Must return — ok or error — never exit/abort/overrun.
        const auto res = tryDeserializeFullOps(flipped);
        if (!res.ok()) {
            EXPECT_FALSE(res.error.empty());
        }
    }
}

TEST(CorruptFullOps, FormatsRejectEachOther)
{
    // Distinct magics: the event reader must refuse a full-op file
    // and vice versa, each with a telling error.
    const auto fullBytes = serializeFullOps(makeFullOps(17));
    const auto evRes = tryDeserializeTrace(fullBytes);
    ASSERT_FALSE(evRes.ok());
    EXPECT_NE(evRes.error.find("full-op file"), std::string::npos);

    const auto evBytes = makeTraceBytes(17);
    const auto fullRes = tryDeserializeFullOps(evBytes);
    ASSERT_FALSE(fullRes.ok());
    EXPECT_NE(fullRes.error.find("event-format"), std::string::npos);
}

TEST(CorruptFullOps, OversizedCountAndBadFieldsAreErrorsNotOom)
{
    // Header claiming ~2^60 ops must be an error, not an allocation.
    std::vector<std::uint8_t> bytes = {'W', 'M', 'R', 'F',
                                       'O', 'P', '0', '1'};
    for (int i = 0; i < 8; ++i)
        bytes.push_back(0x80 | 0x7f);
    bytes.push_back(0x0f);
    const auto big = tryDeserializeFullOps(bytes);
    ASSERT_FALSE(big.ok());
    EXPECT_FALSE(big.error.empty());

    // One op whose processor id exceeds ProcId range: the narrowing
    // cast must be rejected, not silently truncated.
    std::vector<std::uint8_t> badProc = {'W', 'M', 'R', 'F',
                                         'O', 'P', '0', '1'};
    badProc.push_back(1); // count = 1
    badProc.push_back(0); // id = 0
    for (int i = 0; i < 4; ++i)
        badProc.push_back(0x80 | 0x7f); // proc = huge varint...
    badProc.push_back(0x0f);            // ...terminated
    const auto bp = tryDeserializeFullOps(badProc);
    ASSERT_FALSE(bp.ok());
    EXPECT_NE(bp.error.find("processor"), std::string::npos);
}

TEST(CorruptFullOps, TrailingBytesAndMissingFile)
{
    auto bytes = serializeFullOps(makeFullOps(19));
    bytes.push_back(0);
    const auto r1 = tryDeserializeFullOps(bytes);
    ASSERT_FALSE(r1.ok());
    EXPECT_NE(r1.error.find("trailing"), std::string::npos);

    const auto r2 =
        tryReadFullOpsFile("/nonexistent/dir/nothing.fullops");
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.status, TraceIoStatus::IoError);
}

// ---------------------------------------------------------------
// CorpusScanner
// ---------------------------------------------------------------

TEST(CorpusScanner, DirectoryScanIsSortedAndFiltered)
{
    TempDir dir("wmr_corpus_scan");
    writeBytes(dir.path() / "b.trace", makeTraceBytes(2));
    writeBytes(dir.path() / "a.trace", makeTraceBytes(1));
    writeBytes(dir.path() / "c.bin", makeTraceBytes(3));
    std::ofstream(dir.path() / "notes.txt") << "ignored";

    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;
    ASSERT_EQ(scan.files.size(), 3u);
    EXPECT_FALSE(scan.fromManifest);
    // Sorted by path: a.trace < b.trace < c.bin.
    EXPECT_NE(scan.files[0].find("a.trace"), std::string::npos);
    EXPECT_NE(scan.files[1].find("b.trace"), std::string::npos);
    EXPECT_NE(scan.files[2].find("c.bin"), std::string::npos);
}

TEST(CorpusScanner, ManifestKeepsOrderAndResolvesRelative)
{
    TempDir dir("wmr_corpus_manifest");
    writeBytes(dir.path() / "one.trace", makeTraceBytes(1));
    writeBytes(dir.path() / "two.trace", makeTraceBytes(2));
    std::ofstream mf(dir.path() / "corpus.txt");
    mf << "# comment line\n"
       << "two.trace\n"
       << "\n"
       << "one.trace\n";
    mf.close();

    const auto scan =
        scanCorpus((dir.path() / "corpus.txt").string());
    ASSERT_TRUE(scan.ok()) << scan.error;
    EXPECT_TRUE(scan.fromManifest);
    ASSERT_EQ(scan.files.size(), 2u);
    EXPECT_NE(scan.files[0].find("two.trace"), std::string::npos);
    EXPECT_NE(scan.files[1].find("one.trace"), std::string::npos);
}

TEST(CorpusScanner, MissingAndEmptyCorpusAreErrors)
{
    EXPECT_FALSE(scanCorpus("/no/such/path/anywhere").ok());
    TempDir dir("wmr_corpus_empty");
    EXPECT_FALSE(scanCorpus(dir.path().string()).ok());
}

// ---------------------------------------------------------------
// BatchPipeline: graceful degradation and engine behavior.
// ---------------------------------------------------------------

TEST(BatchPipeline, CorruptTracesBecomePerTraceFailures)
{
    TempDir dir("wmr_batch_degrade");
    const std::size_t total = writeMixedCorpus(dir.path(), 6);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;
    ASSERT_EQ(scan.files.size(), total);

    BatchOptions opts;
    opts.jobs = 4;
    const auto batch = runBatch(scan, opts);
    ASSERT_EQ(batch.traces.size(), total);
    EXPECT_EQ(batch.numFailed(), 2u);
    EXPECT_EQ(batch.metrics.analyzed, 6u);
    EXPECT_EQ(batch.metrics.failed, 2u);
    EXPECT_EQ(batch.metrics.skipped, 0u);

    // The corrupt entries carry their reasons; the good ones their
    // summaries.
    for (const auto &tr : batch.traces) {
        if (tr.path.find("x_truncated") != std::string::npos) {
            EXPECT_EQ(tr.status, TraceRunStatus::FormatError);
            EXPECT_FALSE(tr.error.empty());
        } else if (tr.path.find("y_garbage") != std::string::npos) {
            EXPECT_EQ(tr.status, TraceRunStatus::FormatError);
            EXPECT_NE(tr.error.find("unrecognized magic"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(tr.ok()) << tr.path << ": " << tr.error;
            EXPECT_GT(tr.events, 0u);
        }
    }
}

TEST(BatchPipeline, FailFastSkipsAfterFirstFailure)
{
    TempDir dir("wmr_batch_failfast");
    // Name the corrupt file so it sorts FIRST: with --jobs 1 every
    // later trace must then be skipped deterministically.
    std::ofstream(dir.path() / "000_bad.trace") << "garbage";
    for (std::size_t i = 0; i < 5; ++i)
        writeBytes(dir.path() / traceName(i),
                   makeTraceBytes(50 + i));

    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok());
    BatchOptions opts;
    opts.jobs = 1;
    opts.failFast = true;
    const auto batch = runBatch(scan, opts);
    EXPECT_EQ(batch.metrics.failed, 1u);
    EXPECT_EQ(batch.metrics.analyzed, 0u);
    EXPECT_EQ(batch.metrics.skipped, 5u);
    for (std::size_t i = 1; i < batch.traces.size(); ++i)
        EXPECT_EQ(batch.traces[i].status, TraceRunStatus::Skipped);
}

TEST(BatchPipeline, MetricsCountWork)
{
    TempDir dir("wmr_batch_metrics");
    writeMixedCorpus(dir.path(), 4);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok());
    BatchOptions opts;
    opts.jobs = 2;
    const auto batch = runBatch(scan, opts);
    EXPECT_EQ(batch.metrics.jobs, 2u);
    EXPECT_EQ(batch.metrics.corpusTraces, 6u);
    EXPECT_GT(batch.metrics.bytesRead, 0u);
    EXPECT_GT(batch.metrics.wallSeconds, 0.0);
    EXPECT_GE(batch.metrics.peakQueueDepth, 1u);
    // JSON renderings exist and carry the schema tags.
    EXPECT_NE(metricsJson(batch.metrics)
                  .find("wmrace-batch-metrics"),
              std::string::npos);
    EXPECT_NE(batchReportJson(batch).find("wmrace-batch-report"),
              std::string::npos);
}

TEST(BatchPipeline, WorkQueueTracksPeakDepthAndDrains)
{
    WorkQueue<int> q(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.peakDepth(), 8u);
    q.close();
    EXPECT_FALSE(q.push(99));
    int v = -1;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.pop(v));
}

// ---------------------------------------------------------------
// BatchDeterminism: the --jobs invariance contract.  This suite is
// what the batch_determinism_tsan CTest entry runs under TSan.
// ---------------------------------------------------------------

TEST(BatchDeterminism, ReportsAreByteIdenticalAcrossJobCounts)
{
    TempDir dir("wmr_batch_determinism");
    // >= 20 traces incl. corrupt ones, per the pipeline contract.
    const std::size_t total = writeMixedCorpus(dir.path(), 22);
    ASSERT_GE(total, 20u);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;

    BatchOptions serial;
    serial.jobs = 1;
    BatchOptions parallel;
    parallel.jobs = 8;
    const auto a = runBatch(scan, serial);
    const auto b = runBatch(scan, parallel);

    EXPECT_EQ(a.metrics.jobs, 1u);
    EXPECT_EQ(b.metrics.jobs, 8u);
    EXPECT_EQ(formatBatchReport(a), formatBatchReport(b));
    EXPECT_EQ(batchReportJson(a), batchReportJson(b));
    // And the failure really is in there.
    EXPECT_EQ(a.numFailed(), 2u);
    EXPECT_NE(formatBatchReport(a).find("FAILED"),
              std::string::npos);
}

// ---------------------------------------------------------------
// BatchSalvage: damaged segmented traces in a corpus.
// ---------------------------------------------------------------

/** A segmented trace with its last @p chop bytes cut off. */
void
writeDamagedSegmented(const fs::path &path, std::uint64_t seed,
                      std::size_t chop)
{
    const Program prog = randomRacyProgram(seed);
    ExecOptions eopts;
    eopts.model = ModelKind::WO;
    eopts.seed = seed;
    const auto res = runProgram(prog, eopts);
    auto bytes = serializeSegmentedTrace(
        buildTrace(res, {.keepMemberOps = true}), 2);
    ASSERT_GT(bytes.size(), chop + 16);
    bytes.resize(bytes.size() - chop);
    writeBytes(path, bytes);
}

TEST(BatchSalvage, DamagedTraceFailsStrictButSalvages)
{
    TempDir dir("wmr_batch_salvage");
    writeBytes(dir.path() / "good.trace", makeTraceBytes(501));
    writeDamagedSegmented(dir.path() / "hurt.trace", 502, 9);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;

    BatchOptions strict;
    strict.jobs = 2;
    const auto a = runBatch(scan, strict);
    EXPECT_EQ(a.numFailed(), 1u);
    EXPECT_EQ(a.metrics.salvaged, 0u);

    BatchOptions tolerant;
    tolerant.jobs = 2;
    tolerant.salvage = true;
    const auto b = runBatch(scan, tolerant);
    EXPECT_EQ(b.numFailed(), 0u);
    EXPECT_EQ(b.metrics.salvaged, 1u);
    bool sawSalvaged = false;
    for (const auto &tr : b.traces) {
        if (tr.salvaged) {
            sawSalvaged = true;
            EXPECT_TRUE(tr.ok());
            EXPECT_GT(tr.events, 0u);
        }
    }
    EXPECT_TRUE(sawSalvaged);
    EXPECT_NE(formatBatchReport(b).find("[salvaged]"),
              std::string::npos);
    EXPECT_NE(batchReportJson(b).find("\"salvaged\": true"),
              std::string::npos);
}

TEST(BatchSalvage, UnsalvageableFileStillFails)
{
    // Magic + garbage: salvage recovers zero events, which must be
    // a failure (quarantine material), not an empty analysis.
    TempDir dir("wmr_batch_unsalvageable");
    std::vector<std::uint8_t> junk = {'W', 'M', 'R', 'S',
                                      'E', 'G', '0', '1'};
    for (int i = 0; i < 32; ++i)
        junk.push_back(static_cast<std::uint8_t>(i * 41));
    writeBytes(dir.path() / "junk.trace", junk);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;

    BatchOptions opts;
    opts.salvage = true;
    const auto batch = runBatch(scan, opts);
    EXPECT_EQ(batch.numFailed(), 1u);
    EXPECT_NE(batch.traces[0].error.find("recovered no events"),
              std::string::npos)
        << batch.traces[0].error;
}

TEST(BatchSalvage, QuarantineManifestIsReFeedable)
{
    TempDir dir("wmr_batch_quarantine");
    writeBytes(dir.path() / "a_good.trace", makeTraceBytes(601));
    std::ofstream bad1(dir.path() / "b_bad.trace");
    bad1 << "not a trace at all";
    bad1.close();
    std::ofstream bad2(dir.path() / "c_bad.trace");
    bad2 << "also not a trace";
    bad2.close();
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;

    const auto batch = runBatch(scan, {});
    ASSERT_EQ(batch.numFailed(), 2u);

    const std::string manifest = quarantineManifest(batch);
    ASSERT_FALSE(manifest.empty());
    const fs::path mpath = dir.path() / "quarantine.txt";
    std::ofstream mout(mpath);
    mout << manifest;
    mout.close();

    // The manifest is itself a corpus: scanning it yields exactly
    // the failed traces.
    const auto rescan = scanCorpus(mpath.string());
    ASSERT_TRUE(rescan.ok()) << rescan.error;
    ASSERT_EQ(rescan.files.size(), 2u);
    EXPECT_NE(rescan.files[0].find("b_bad.trace"),
              std::string::npos);
    EXPECT_NE(rescan.files[1].find("c_bad.trace"),
              std::string::npos);

    // Nothing failed -> no manifest.
    TempDir clean("wmr_batch_quarantine_clean");
    writeBytes(clean.path() / "ok.trace", makeTraceBytes(602));
    const auto cleanScan = scanCorpus(clean.path().string());
    ASSERT_TRUE(cleanScan.ok());
    EXPECT_TRUE(quarantineManifest(runBatch(cleanScan, {})).empty());
}

// ---------------------------------------------------------------
// CheckpointJournal: crash-tolerant resume.
// ---------------------------------------------------------------

TEST(CheckpointJournal, LineRoundTripCarriesEveryReportedField)
{
    TraceRunResult r;
    r.path = "/tmp/some dir/weird\tname\n.trace";
    r.status = TraceRunStatus::Ok;
    r.fileBytes = 12345;
    r.events = 17;
    r.syncEvents = 5;
    r.ops = 99;
    r.races = 3;
    r.dataRaces = 2;
    r.partitions = 4;
    r.firstPartitions = 1;
    r.reportedRaces = 1;
    r.anyDataRace = true;
    r.wholeExecutionSc = false;
    r.salvaged = true;
    r.unresolvedPairings = 7;
    r.droppedDataRecords = 11;

    TraceRunResult back;
    ASSERT_TRUE(parseCheckpointLine(checkpointLine(r), back));
    EXPECT_EQ(back.path, r.path);
    EXPECT_EQ(back.status, r.status);
    EXPECT_EQ(back.fileBytes, r.fileBytes);
    EXPECT_EQ(back.events, r.events);
    EXPECT_EQ(back.syncEvents, r.syncEvents);
    EXPECT_EQ(back.ops, r.ops);
    EXPECT_EQ(back.races, r.races);
    EXPECT_EQ(back.dataRaces, r.dataRaces);
    EXPECT_EQ(back.partitions, r.partitions);
    EXPECT_EQ(back.firstPartitions, r.firstPartitions);
    EXPECT_EQ(back.reportedRaces, r.reportedRaces);
    EXPECT_EQ(back.anyDataRace, r.anyDataRace);
    EXPECT_EQ(back.wholeExecutionSc, r.wholeExecutionSc);
    EXPECT_EQ(back.salvaged, r.salvaged);
    EXPECT_EQ(back.unresolvedPairings, r.unresolvedPairings);
    EXPECT_EQ(back.droppedDataRecords, r.droppedDataRecords);

    TraceRunResult fail;
    fail.path = "x.trace";
    fail.status = TraceRunStatus::FormatError;
    fail.error = "bad magic\tin line 1";
    ASSERT_TRUE(parseCheckpointLine(checkpointLine(fail), back));
    EXPECT_EQ(back.status, TraceRunStatus::FormatError);
    EXPECT_EQ(back.error, fail.error);
}

TEST(CheckpointJournal, EveryTornPrefixIsRejected)
{
    TraceRunResult r;
    r.path = "t.trace";
    r.status = TraceRunStatus::Ok;
    r.events = 9;
    const std::string line = checkpointLine(r);
    TraceRunResult out;
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
        EXPECT_FALSE(parseCheckpointLine(line.substr(0, cut), out))
            << "torn prefix of length " << cut << " parsed";
    }
    EXPECT_TRUE(parseCheckpointLine(line, out));
    // Comments and junk are rejected too, without stopping a load.
    EXPECT_FALSE(parseCheckpointLine("# a comment", out));
    EXPECT_FALSE(parseCheckpointLine("random garbage", out));
}

TEST(CheckpointJournal, ResumeSkipsCompletedAndReportIsIdentical)
{
    TempDir dir("wmr_batch_resume");
    const std::size_t total = writeMixedCorpus(dir.path(), 6);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;

    // The reference: one uninterrupted run, no checkpoint.
    const auto ref = runBatch(scan, {});

    // "Killed halfway": run only the first half of the corpus (via
    // a manifest) with the journal, as if the process died there.
    const fs::path half = dir.path() / "half.manifest";
    {
        std::ofstream out(half);
        for (std::size_t i = 0; i < scan.files.size() / 2; ++i)
            out << scan.files[i] << "\n";
    }
    const auto halfScan = scanCorpus(half.string());
    ASSERT_TRUE(halfScan.ok()) << halfScan.error;
    const std::string ckpt = (dir.path() / "ck.tsv").string();
    BatchOptions withCkpt;
    withCkpt.checkpointPath = ckpt;
    const auto first = runBatch(halfScan, withCkpt);
    EXPECT_EQ(first.metrics.resumed, 0u);

    // Resume over the FULL corpus: the journaled half is prefilled,
    // only the rest is analyzed, and the report is byte-identical
    // to the uninterrupted run.
    const auto resumed = runBatch(scan, withCkpt);
    EXPECT_EQ(resumed.metrics.resumed, scan.files.size() / 2);
    EXPECT_EQ(resumed.metrics.corpusTraces, total);
    EXPECT_EQ(formatBatchReport(resumed), formatBatchReport(ref));
    EXPECT_EQ(batchReportJson(resumed), batchReportJson(ref));

    // A third run resumes everything.
    const auto third = runBatch(scan, withCkpt);
    EXPECT_EQ(third.metrics.resumed, scan.files.size());
    EXPECT_EQ(formatBatchReport(third), formatBatchReport(ref));
}

TEST(CheckpointJournal, TornJournalLineIsIgnoredAndHealed)
{
    TempDir dir("wmr_batch_torn_journal");
    writeMixedCorpus(dir.path(), 4);
    const auto scan = scanCorpus(dir.path().string());
    ASSERT_TRUE(scan.ok()) << scan.error;

    const std::string ckpt = (dir.path() / "ck.tsv").string();
    BatchOptions opts;
    opts.checkpointPath = ckpt;
    const auto ref = runBatch(scan, opts);

    // Tear the journal: keep two lines plus half of a third, with
    // no trailing newline — the SIGKILL-mid-append shape.
    const auto full = loadCheckpoint(ckpt);
    ASSERT_GE(full.entries.size(), 3u);
    {
        std::ifstream in(ckpt);
        std::string l1, l2, l3;
        std::getline(in, l1);
        std::getline(in, l2);
        std::getline(in, l3);
        in.close();
        std::ofstream out(ckpt, std::ios::trunc);
        out << l1 << "\n"
            << l2 << "\n"
            << l3.substr(0, l3.size() / 2);
    }
    const auto torn = loadCheckpoint(ckpt);
    EXPECT_EQ(torn.entries.size(), 2u);
    EXPECT_EQ(torn.tornLines, 1u);

    // Resuming over the torn journal re-analyzes the torn trace and
    // appends on a FRESH line (no gluing onto the fragment)...
    const auto again = runBatch(scan, opts);
    EXPECT_EQ(again.metrics.resumed, 2u);
    EXPECT_EQ(formatBatchReport(again), formatBatchReport(ref));

    // ...so the next resume recovers every completed trace.
    const auto healed = runBatch(scan, opts);
    EXPECT_EQ(healed.metrics.resumed, scan.files.size());
    EXPECT_EQ(formatBatchReport(healed), formatBatchReport(ref));
}

// ---------------------------------------------------------------
// AnalysisReentrancy: analyzeTrace() across threads.
// ---------------------------------------------------------------

TEST(AnalysisReentrancy, ConcurrentAnalyzeTraceAgreesWithSerial)
{
    const auto bytes = makeTraceBytes(99);
    const auto serial = formatReport(
        analyzeTrace(deserializeTrace(bytes)), nullptr);

    constexpr unsigned kThreads = 8;
    std::vector<std::string> reports(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            auto res = tryDeserializeTrace(bytes);
            ASSERT_TRUE(res.ok());
            reports[t] = formatReport(
                analyzeTrace(std::move(res.trace)), nullptr);
        });
    }
    for (auto &th : threads)
        th.join();
    for (const auto &r : reports)
        EXPECT_EQ(r, serial);
}

} // namespace
} // namespace wmr
