
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/patterns.cc" "src/workload/CMakeFiles/wmr_workload.dir/patterns.cc.o" "gcc" "src/workload/CMakeFiles/wmr_workload.dir/patterns.cc.o.d"
  "/root/repo/src/workload/random_gen.cc" "src/workload/CMakeFiles/wmr_workload.dir/random_gen.cc.o" "gcc" "src/workload/CMakeFiles/wmr_workload.dir/random_gen.cc.o.d"
  "/root/repo/src/workload/scenarios.cc" "src/workload/CMakeFiles/wmr_workload.dir/scenarios.cc.o" "gcc" "src/workload/CMakeFiles/wmr_workload.dir/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prog/CMakeFiles/wmr_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
