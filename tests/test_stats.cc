/**
 * @file
 * Unit tests of the execution-statistics summarizer.
 */

#include <gtest/gtest.h>

#include "sim/exec_stats.hh"
#include "workload/patterns.hh"
#include "workload/scenarios.hh"

namespace wmr {
namespace {

TEST(ExecStats, CountsOpKinds)
{
    const auto res = runProgram(figure1b(), {.model = ModelKind::WO});
    const auto s = summarizeExecution(res);
    EXPECT_EQ(s.dataWrites, 2u);       // x, y
    EXPECT_EQ(s.dataReads, 2u);        // y, x
    EXPECT_GE(s.syncReads, 1u);        // >= 1 tas read
    EXPECT_GE(s.syncWrites, 2u);       // tas write + unset
    EXPECT_EQ(s.releases, 1u);         // the unset
    EXPECT_GE(s.acquires, 1u);
    EXPECT_EQ(s.staleReads, 0u);
    EXPECT_EQ(s.memOps,
              s.dataReads + s.dataWrites + s.syncReads + s.syncWrites);
}

TEST(ExecStats, PerProcOpsSumToTotal)
{
    const auto res =
        runProgram(lockedCounter(3, 4), {.model = ModelKind::RCsc});
    const auto s = summarizeExecution(res);
    std::uint64_t sum = 0;
    for (const auto n : s.opsPerProc)
        sum += n;
    EXPECT_EQ(sum, s.memOps);
    EXPECT_EQ(s.opsPerProc.size(), 3u);
}

TEST(ExecStats, StaleTrackingByAddress)
{
    const auto sc = stageFigure2bExecution();
    const auto s = summarizeExecution(sc.result);
    EXPECT_GT(s.staleReads, 0u);
    EXPECT_GT(s.divergentOps, 0u);
    // The stale read was of Q (address 0).
    ASSERT_TRUE(s.staleByAddr.count(0));
    EXPECT_GE(s.staleByAddr.at(0), 1u);
}

TEST(ExecStats, SyncFraction)
{
    ExecStats s;
    s.memOps = 10;
    s.syncReads = 2;
    s.syncWrites = 3;
    EXPECT_DOUBLE_EQ(s.syncFraction(), 0.5);
    ExecStats empty;
    EXPECT_DOUBLE_EQ(empty.syncFraction(), 0.0);
}

TEST(ExecStats, FormatMentionsKeyNumbers)
{
    const auto sc = stageFigure2bExecution();
    const auto s = summarizeExecution(sc.result);
    const auto text = formatStats(s, &sc.program);
    EXPECT_NE(text.find("stale reads"), std::string::npos);
    EXPECT_NE(text.find("Q:"), std::string::npos); // stale-by-addr
    EXPECT_NE(text.find("sync fraction"), std::string::npos);
}

TEST(ExecStats, CleanRunFormat)
{
    const auto res = runProgram(figure1b(), {.model = ModelKind::WO});
    const auto text = formatStats(summarizeExecution(res));
    EXPECT_NE(text.find("no stale reads"), std::string::npos);
}

} // namespace
} // namespace wmr
