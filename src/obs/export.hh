/**
 * @file
 * Exporters of the observability snapshot (obs.hh): Chrome
 * trace_event JSON (loadable in perfetto / chrome://tracing) and
 * JSON-lines, plus the plain-text counter summary `WMR_OBS=1`
 * prints to stderr at exit.
 *
 * Both machine formats carry the same data: every finished span of
 * every thread (name, thread, start, duration, depth, optional
 * detail) and every registered counter/gauge.  Timestamps are
 * steady-clock microseconds relative to the obs epoch, so a trace of
 * a whole `record -> salvage -> analyze -> report` run lines up on
 * one timeline.
 */

#ifndef WMR_OBS_EXPORT_HH
#define WMR_OBS_EXPORT_HH

#include <string>

namespace wmr::obs {

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** @return the snapshot as a Chrome trace_event JSON document. */
std::string chromeTraceJson();

/** @return the snapshot as JSON-lines (one object per line). */
std::string jsonLines();

/** @return the registered counters as a human-readable block. */
std::string formatCounterSummary();

/** Write chromeTraceJson() to @p path. @return success. */
bool writeChromeTrace(const std::string &path);

/** Write jsonLines() to @p path. @return success. */
bool writeJsonLines(const std::string &path);

} // namespace wmr::obs

#endif // WMR_OBS_EXPORT_HH
