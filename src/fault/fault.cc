#include "fault/fault.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace wmr::fault {

namespace {

enum class Trigger : std::uint8_t {
    Always, ///< every hit
    Once,   ///< hit 1 only
    Nth,    ///< hit == arg
    After,  ///< hit > arg
    Prob,   ///< seeded coin per hit
};

struct Site
{
    std::string name;
    Trigger trigger = Trigger::Always;
    std::uint64_t arg = 0; ///< Nth/After threshold
    double prob = 0.0;     ///< Prob threshold in [0,1]
    bool hasParam = false;
    std::uint64_t param = 0;

    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fired{0};
    obs::Counter cHits;  ///< `fault.<site>.hits`
    obs::Counter cFired; ///< `fault.<site>`
};

struct Registry
{
    // Sites are immutable after (re)configure; only the per-site
    // atomics mutate per hit.  configure() swaps the whole vector
    // under the mutex; readers go through lookup() which also takes
    // it — sites are few and the call sites are I/O boundaries, so
    // the lock is noise there (and the WMR_FAULT-unset fast path
    // never reaches it).
    std::mutex mu;
    std::vector<Site *> sites;
    std::uint64_t seed = 0;
};

Registry &
registry()
{
    // Immortal (leaked) on purpose, like the obs registry's name
    // copies: at() is hit as late as the tracer's atexit-time spill
    // sealing, and a function-local static would be destroyed first
    // (its __cxa_atexit registration — our first hit, on the drain
    // thread — lands AFTER the tracer registers its stop hook, so
    // its destructor runs BEFORE the tracer's final writes).
    static Registry *r = new Registry;
    return *r;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
strHash64(const std::string &s)
{
    // FNV-1a, folded through splitmix64 for avalanche.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return splitmix64(h);
}

/** The deterministic coin: keyed on seed, site and hit ordinal. */
bool
coin(std::uint64_t seedv, std::uint64_t siteHash,
     std::uint64_t hit, double p)
{
    const std::uint64_t r =
        splitmix64(seedv ^ siteHash ^ (hit * 0x9e3779b97f4a7c15ull));
    // Top 53 bits -> [0,1).
    const double u =
        static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
    return u < p;
}

bool
parseU64Field(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Parse one `site[@spec]` entry into a fresh Site. @return nullptr
 *  with @p error set on a grammar violation. */
Site *
parseEntry(const std::string &entry, std::string &error)
{
    const std::size_t at = entry.find('@');
    const std::string name = entry.substr(0, at);
    if (name.empty()) {
        error = "fault entry with an empty site name";
        return nullptr;
    }
    auto site = new Site;
    site->name = name;
    if (at == std::string::npos)
        return site;

    const std::string spec = entry.substr(at + 1);
    std::size_t start = 0;
    bool sawTrigger = false;
    for (;;) {
        const std::size_t colon = spec.find(':', start);
        const std::string field =
            colon == std::string::npos
                ? spec.substr(start)
                : spec.substr(start, colon - start);
        if (field.empty()) {
            error = "fault site '" + name + "': empty spec field";
            delete site;
            return nullptr;
        }
        std::uint64_t u = 0;
        if (field == "once") {
            site->trigger = Trigger::Once;
            sawTrigger = true;
        } else if (field[0] == 'p' &&
                   (field.size() > 1 &&
                    (std::isdigit(
                         static_cast<unsigned char>(field[1])) ||
                     field[1] == '.'))) {
            char *end = nullptr;
            const double p = std::strtod(field.c_str() + 1, &end);
            if (end == nullptr || *end != '\0' || p < 0.0 ||
                p > 1.0) {
                error = "fault site '" + name +
                        "': probability '" + field +
                        "' is not p<float in [0,1]>";
                delete site;
                return nullptr;
            }
            site->trigger = Trigger::Prob;
            site->prob = p;
            sawTrigger = true;
        } else if (field[0] == 'n' && field.size() > 1 &&
                   parseU64Field(field.substr(1), u)) {
            if (u == 0) {
                error = "fault site '" + name +
                        "': n0 names no hit (hits are 1-based)";
                delete site;
                return nullptr;
            }
            site->trigger = Trigger::Nth;
            site->arg = u;
            sawTrigger = true;
        } else if (field.rfind("after", 0) == 0 &&
                   parseU64Field(field.substr(5), u)) {
            site->trigger = Trigger::After;
            site->arg = u;
            sawTrigger = true;
        } else if (parseU64Field(field, u)) {
            site->hasParam = true;
            site->param = u;
        } else {
            error = "fault site '" + name +
                    "': unrecognized spec field '" + field + "'";
            delete site;
            return nullptr;
        }
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    (void)sawTrigger; // a param-only spec keeps Trigger::Always
    return site;
}

/** Replace the registry's sites. Caller holds no lock. */
bool
installSpec(const std::string &spec, std::uint64_t seedv,
            std::string *error)
{
    std::vector<Site *> parsed;
    std::size_t start = 0;
    bool ok = true;
    std::string err;
    if (!spec.empty()) {
        for (;;) {
            const std::size_t comma = spec.find(',', start);
            const std::string entry =
                comma == std::string::npos
                    ? spec.substr(start)
                    : spec.substr(start, comma - start);
            if (!entry.empty()) {
                Site *s = parseEntry(entry, err);
                if (s == nullptr) {
                    ok = false;
                    break;
                }
                s->cHits = obs::counter(
                    ("fault." + s->name + ".hits").c_str());
                s->cFired =
                    obs::counter(("fault." + s->name).c_str());
                parsed.push_back(s);
            } else if (!spec.empty()) {
                err = "empty fault entry (stray comma)";
                ok = false;
                break;
            }
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }

    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (!ok) {
        for (Site *s : parsed)
            delete s;
        // Leave the registry DISABLED on a bad spec: a chaos run
        // must fail loudly rather than soak fault-free.
        for (Site *s : reg.sites)
            delete s;
        reg.sites.clear();
        detail::gEnabled.store(false, std::memory_order_release);
        if (error != nullptr)
            *error = err;
        return false;
    }
    for (Site *s : reg.sites)
        delete s;
    reg.sites = std::move(parsed);
    reg.seed = seedv;
    detail::gEnabled.store(!reg.sites.empty(),
                           std::memory_order_release);
    return true;
}

std::once_flag gInitOnce;

void
initFromEnv()
{
    const char *spec = std::getenv("WMR_FAULT");
    if (spec == nullptr || *spec == '\0')
        return;
    std::uint64_t seedv = 0;
    if (const char *s = std::getenv("WMR_FAULT_SEED")) {
        char *end = nullptr;
        errno = 0;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0')
            seedv = v;
        else
            warn("WMR_FAULT_SEED '%s' is not a u64; using 0", s);
    }
    std::string err;
    if (!installSpec(spec, seedv, &err))
        warn("WMR_FAULT rejected: %s (fault injection disabled)",
             err.c_str());
}

Site *
findSite(const char *name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (Site *s : reg.sites)
        if (s->name == name)
            return s;
    return nullptr;
}

} // namespace

namespace detail {

// Armed at load time by the mere PRESENCE of WMR_FAULT so the inline
// at() fast path (a single relaxed load, no init hook) ever reaches
// atSlow(), which lazily parses the spec on the first hit.  Without
// this, env-driven injection only worked in processes that happened
// to call configure()/configured() first — i.e. the unit tests, but
// never the CLI.  A spec that parses to no sites (or fails to parse)
// drops the flag back to false on that first hit.
std::atomic<bool> gEnabled{[] {
    const char *s = std::getenv("WMR_FAULT");
    return s != nullptr && *s != '\0';
}()};

void
ensureInit()
{
    std::call_once(gInitOnce, initFromEnv);
}

bool
atSlow(const char *site, std::uint64_t *param)
{
    ensureInit();
    Site *s = findSite(site);
    if (s == nullptr)
        return false;
    if (param != nullptr && s->hasParam)
        *param = s->param;
    const std::uint64_t hit =
        s->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    s->cHits.inc();
    bool fire = false;
    switch (s->trigger) {
      case Trigger::Always:
        fire = true;
        break;
      case Trigger::Once:
        fire = hit == 1;
        break;
      case Trigger::Nth:
        fire = hit == s->arg;
        break;
      case Trigger::After:
        fire = hit > s->arg;
        break;
      case Trigger::Prob:
        fire = coin(registry().seed, strHash64(s->name), hit,
                    s->prob);
        break;
    }
    if (fire) {
        s->fired.fetch_add(1, std::memory_order_relaxed);
        s->cFired.inc();
    }
    return fire;
}

} // namespace detail

bool
configured(const char *site)
{
    detail::ensureInit();
    if (!detail::gEnabled.load(std::memory_order_acquire))
        return false;
    return findSite(site) != nullptr;
}

std::uint64_t
paramOr(const char *site, std::uint64_t def)
{
    detail::ensureInit();
    if (!detail::gEnabled.load(std::memory_order_acquire))
        return def;
    Site *s = findSite(site);
    return s != nullptr && s->hasParam ? s->param : def;
}

bool
configure(const std::string &spec, std::uint64_t seedv,
          std::string *error)
{
    // Pre-empt the env parse so a test's configure() is not raced by
    // a concurrent lazy init.
    std::call_once(gInitOnce, [] {});
    return installSpec(spec, seedv, error);
}

std::uint64_t
hits(const char *site)
{
    Site *s = findSite(site);
    return s != nullptr
               ? s->hits.load(std::memory_order_relaxed)
               : 0;
}

std::uint64_t
fired(const char *site)
{
    Site *s = findSite(site);
    return s != nullptr
               ? s->fired.load(std::memory_order_relaxed)
               : 0;
}

void
noteFired(const char *site)
{
    obs::counter((std::string("fault.") + site).c_str()).inc();
}

std::uint64_t
seed()
{
    detail::ensureInit();
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    return reg.seed;
}

} // namespace wmr::fault
