file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_onthefly.dir/bench_sec5_onthefly.cc.o"
  "CMakeFiles/bench_sec5_onthefly.dir/bench_sec5_onthefly.cc.o.d"
  "bench_sec5_onthefly"
  "bench_sec5_onthefly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_onthefly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
