#include "staticdet/cfg.hh"

#include <queue>

namespace wmr {

Cfg::Cfg(const Thread &thread)
{
    const auto n = static_cast<std::uint32_t>(thread.code.size());
    succ_.assign(n, {});
    pred_.assign(n, {});
    reachable_.assign(n, false);

    const auto addEdge = [&](std::uint32_t from, std::uint32_t to) {
        if (to >= n)
            return; // running off the end == halt
        succ_[from].push_back(to);
        pred_[to].push_back(from);
    };

    for (std::uint32_t pc = 0; pc < n; ++pc) {
        const Instr &i = thread.code[pc];
        switch (i.op) {
          case Opcode::Halt:
            break;
          case Opcode::Jump:
            addEdge(pc, i.target);
            break;
          case Opcode::Branch:
          case Opcode::BranchZ:
            addEdge(pc, i.target);
            if (i.target != pc + 1)
                addEdge(pc, pc + 1);
            break;
          default:
            addEdge(pc, pc + 1);
            break;
        }
    }

    // Reachability from the entry.
    if (n == 0)
        return;
    std::queue<std::uint32_t> work;
    work.push(0);
    reachable_[0] = true;
    while (!work.empty()) {
        const std::uint32_t pc = work.front();
        work.pop();
        for (const auto s : succ_[pc]) {
            if (!reachable_[s]) {
                reachable_[s] = true;
                work.push(s);
            }
        }
    }
}

} // namespace wmr
