#include "sim/store_buffer_model.hh"

#include "common/logging.hh"

namespace wmr {

std::string_view
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::SC: return "SC";
      case ModelKind::WO: return "WO";
      case ModelKind::RCsc: return "RCsc";
      case ModelKind::DRF0: return "DRF0";
      case ModelKind::DRF1: return "DRF1";
    }
    panic("modelName: bad kind %d", static_cast<int>(kind));
}

ModelPolicy
policyFor(ModelKind kind)
{
    ModelPolicy p;
    p.kind = kind;
    switch (kind) {
      case ModelKind::SC:
        p.noBuffer = true;
        break;
      case ModelKind::WO:
        p.drainOnAllSync = true;
        p.pipelinedDrain = false;
        break;
      case ModelKind::RCsc:
        p.drainOnAllSync = false;
        p.drainOnRelease = true;
        p.pipelinedDrain = false;
        break;
      case ModelKind::DRF0:
        p.drainOnAllSync = true;
        p.pipelinedDrain = true;
        break;
      case ModelKind::DRF1:
        p.drainOnAllSync = false;
        p.drainOnRelease = true;
        p.pipelinedDrain = true;
        break;
    }
    return p;
}

std::unique_ptr<MemoryModel>
makeModel(ModelKind kind, ProcId procs, Addr words, const CostParams &cost,
          double drainLaziness)
{
    return std::make_unique<StoreBufferModel>(policyFor(kind), procs,
                                              words, cost, drainLaziness);
}

StoreBufferModel::StoreBufferModel(ModelPolicy policy, ProcId procs,
                                   Addr words, const CostParams &cost,
                                   double drainLaziness)
    : policy_(policy), cost_(cost), drainLaziness_(drainLaziness),
      memory_(words, 0), lastWriter_(words, kNoOp),
      shadowMemory_(words, 0), shadowWriter_(words, kNoOp),
      buffers_(procs)
{
}

void
StoreBufferModel::ensureAddr(Addr addr)
{
    if (addr >= memory_.size()) {
        memory_.resize(addr + 1, 0);
        lastWriter_.resize(addr + 1, kNoOp);
        shadowMemory_.resize(addr + 1, 0);
        shadowWriter_.resize(addr + 1, kNoOp);
    }
}

void
StoreBufferModel::shadowWrite(Addr addr, OpId id, Value value)
{
    shadowMemory_[addr] = value;
    shadowWriter_[addr] = id;
}

ReadResult
StoreBufferModel::globalRead(ProcId proc, Addr addr, Tick cost)
{
    (void)proc;
    ReadResult r;
    r.value = memory_[addr];
    r.observedWrite = lastWriter_[addr];
    r.stale = (r.observedWrite != shadowWriter_[addr]);
    r.cost = cost;
    return r;
}

ReadResult
StoreBufferModel::readData(ProcId proc, Addr addr)
{
    ensureAddr(addr);
    if (!policy_.noBuffer) {
        // Forward from the newest pending store to this address.
        const auto &buf = buffers_[proc];
        for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
            if (it->addr == addr) {
                ReadResult r;
                r.value = it->value;
                r.observedWrite = it->id;
                r.stale = (r.observedWrite != shadowWriter_[addr]);
                r.cost = cost_.readLatency;
                return r;
            }
        }
    }
    return globalRead(proc, addr, cost_.readLatency);
}

WriteResult
StoreBufferModel::writeData(ProcId proc, Addr addr, Value value, OpId id)
{
    ensureAddr(addr);
    shadowWrite(addr, id, value);
    WriteResult w;
    if (policy_.noBuffer) {
        memory_[addr] = value;
        lastWriter_[addr] = id;
        w.cost = cost_.writeLatency;
    } else {
        buffers_[proc].push_back({addr, value, id});
        w.cost = cost_.bufferInsert;
    }
    return w;
}

ReadResult
StoreBufferModel::readSync(ProcId proc, Addr addr, bool acquire)
{
    ensureAddr(addr);
    Tick extra = 0;
    if (!policy_.noBuffer && policy_.drainOnAllSync) {
        // WO/DRF0: every sync operation waits for all previous
        // operations of its processor to complete.
        extra = drainCost(drainProc(proc));
    }
    (void)acquire; // acquire semantics affect pairing, not draining
    return globalRead(proc, addr, cost_.syncAccess + extra);
}

WriteResult
StoreBufferModel::writeSync(ProcId proc, Addr addr, Value value, OpId id,
                            bool release)
{
    ensureAddr(addr);
    Tick extra = 0;
    if (!policy_.noBuffer &&
        (policy_.drainOnAllSync || (policy_.drainOnRelease && release))) {
        extra = drainCost(drainProc(proc));
    }
    shadowWrite(addr, id, value);
    // Sync writes access the coherent memory directly; they are never
    // buffered (they are the mechanism other processors synchronize
    // through, so delaying them would only delay the pairing).
    memory_[addr] = value;
    lastWriter_[addr] = id;
    WriteResult w;
    w.cost = (policy_.noBuffer ? cost_.writeLatency : cost_.syncAccess) +
             extra;
    return w;
}

Tick
StoreBufferModel::fence(ProcId proc)
{
    if (policy_.noBuffer)
        return 1;
    return drainCost(drainProc(proc)) + 1;
}

void
StoreBufferModel::tick(Rng &rng)
{
    if (policy_.noBuffer)
        return;
    for (ProcId p = 0; p < buffers_.size(); ++p) {
        auto &buf = buffers_[p];
        if (buf.empty())
            continue;
        if (rng.chance(drainLaziness_))
            continue;
        // Pick a random drainable entry: the OLDEST pending store to
        // its address (per-location coherence), any address.
        const std::size_t pick = rng.below(buf.size());
        std::size_t idx = pick;
        for (std::size_t i = 0; i < pick; ++i) {
            if (buf[i].addr == buf[pick].addr) {
                idx = i;
                break;
            }
        }
        drainEntry(p, idx);
    }
}

void
StoreBufferModel::drainEntry(ProcId proc, std::size_t idx)
{
    auto &buf = buffers_[proc];
    wmr_assert(idx < buf.size());
    const PendingStore st = buf[idx];
    memory_[st.addr] = st.value;
    lastWriter_[st.addr] = st.id;
    buf.erase(buf.begin() + static_cast<std::ptrdiff_t>(idx));
}

std::size_t
StoreBufferModel::drainProc(ProcId proc)
{
    auto &buf = buffers_[proc];
    const std::size_t n = buf.size();
    // Draining everything makes relative order among the drained
    // stores unobservable; apply them in buffer (program) order.
    for (const auto &st : buf) {
        memory_[st.addr] = st.value;
        lastWriter_[st.addr] = st.id;
    }
    buf.clear();
    return n;
}

Tick
StoreBufferModel::drainCost(std::size_t n) const
{
    if (n == 0)
        return 0;
    if (policy_.pipelinedDrain) {
        return cost_.writeLatency +
               (n - 1) * cost_.drainPipelined;
    }
    return n * cost_.writeLatency;
}

void
StoreBufferModel::drainAddr(ProcId proc, Addr addr)
{
    auto &buf = buffers_.at(proc);
    for (std::size_t i = 0; i < buf.size(); ++i) {
        if (buf[i].addr == addr) {
            drainEntry(proc, i); // oldest entry first: coherence
            return;
        }
    }
}

void
StoreBufferModel::drainAll()
{
    for (ProcId p = 0; p < buffers_.size(); ++p)
        drainProc(p);
}

std::size_t
StoreBufferModel::pendingStores(ProcId proc) const
{
    return buffers_.at(proc).size();
}

Value
StoreBufferModel::globalValue(Addr addr) const
{
    return addr < memory_.size() ? memory_[addr] : 0;
}

} // namespace wmr
