/**
 * @file
 * The in-process runtime tracer: records real threaded programs into
 * the Section 4.1 EVENT abstraction.
 *
 * Architecture (one Tracer per process, normally the global one
 * behind the C annotation API in annotate.hh):
 *
 *   annotated threads ──► per-thread SPSC rings ──► drain thread
 *                                                      │
 *                     record mode: coalesce into events, write the
 *                        EVENT trace file `wmrace check/batch` read
 *                     inline mode: pump MemOps into an on-the-fly
 *                        detector (vc/epoch) for immediate reports
 *
 * Producers never lock: data annotations push one fixed-size record
 * into their own ring; sync annotations additionally touch two
 * atomics in the lock-free SyncRegistry, which is how the observed
 * release→acquire pairing (so1, Def. 2.2) and the per-object sync
 * order are captured at annotation time.
 *
 * The drain thread is the single consumer of every ring.  It pops
 * data records freely but gates each *sync* record on the per-object
 * sequence number the producer recorded: a sync record is consumed
 * only when all earlier sync operations on the same object have been
 * consumed.  Because those sequence numbers are assigned by one
 * atomic fetch_add, every wait is for a record earlier in real time,
 * so the gating cannot deadlock — and it guarantees an acquire is
 * drained after the release it observed, which keeps both inline
 * detection (clock joins) and record-mode pairing exact.
 */

#ifndef WMR_RT_TRACER_HH
#define WMR_RT_TRACER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "onthefly/onthefly.hh"
#include "rt/ring_buffer.hh"
#include "rt/sync_registry.hh"
#include "trace/execution_trace.hh"
#include "trace/segmented_io.hh"

namespace wmr::rt {

/** What the tracer does with the drained stream. */
enum class RtMode : std::uint8_t {
    Record, ///< build an ExecutionTrace / EVENT trace file
    Inline, ///< pump an on-the-fly detector, no file
};

/** Which detector inline mode runs. */
enum class RtDetector : std::uint8_t { VectorClock, Epoch };

/** What a producer does when its ring is full. */
enum class RtOverflowPolicy : std::uint8_t {
    Block, ///< spin until the drain frees a slot (lossless)
    Drop,  ///< drop DATA records, counting them; sync always blocks
};

/** Configuration of one Tracer. */
struct TracerConfig
{
    RtMode mode = RtMode::Record;

    /** Record mode: trace file written at stop() ("" = keep the
     *  trace in memory only; fetch it with takeTrace()). */
    std::string tracePath;

    RtOverflowPolicy overflow = RtOverflowPolicy::Block;

    /** Per-thread ring capacity in records (power of two). */
    std::size_t ringCapacity = 1 << 14;

    /** Sync-object table capacity (power of two). */
    std::size_t syncCapacity = 1 << 10;

    /** Max records drained from one ring before moving on. */
    std::size_t drainBatch = 256;

    /** Cap on data ops merged into one computation event
     *  (0 = unlimited: events span sync to sync, as in the paper). */
    std::uint32_t maxCompRun = 0;

    /** Inline mode: detector flavor and thread ceiling (the
     *  detectors size their vector clocks up front). */
    RtDetector detector = RtDetector::VectorClock;
    ProcId maxThreads = 64;

    /**
     * Run the drain on a background thread (production).  When
     * false, records accumulate until drainAll()/stop() — used by
     * tests and benchmarks for determinism; combine with Drop
     * overflow or a large ring, or producers will spin forever.
     */
    bool backgroundDrain = true;

    /**
     * Record mode: spill sealed events to cfg.tracePath incrementally
     * as segmented, checksummed frames (trace/segmented_io.hh), a
     * data segment every time this many pending payload bytes
     * accumulate (and at every drain quiescence point).  0 = classic
     * single-blob write at stop() — the historical behavior, which
     * loses the whole trace if the process dies first.  `wmrace
     * record` children default to 64 KiB via WMR_RT_SPILL.
     */
    std::size_t spillSegmentBytes = 0;

    /**
     * Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that best-effort
     * seal + fsync the current spill segment before re-raising, so a
     * crashing traced program still leaves a salvageable trace.
     * Only meaningful with spillSegmentBytes > 0.
     */
    bool crashHandlers = false;

    /**
     * Fault-injection point for robustness tests ("" = none):
     *   crash-in-drain[@N]    raise SIGSEGV on the drain thread
     *                         after N drained records (default 50)
     *   crash-mid-segment[@N] write a torn frame instead of sealing
     *                         segment N+1, then _exit(86) (default 1)
     *   slow-child[@SEC]      sleep SEC seconds at the top of stop()
     *                         (default 30) — a wedged shutdown
     * Set via WMR_RT_FAULT for env-driven tracers.
     */
    std::string faultSpec;
};

/** Flush/drain metrics and loss counters of one tracing run. */
struct RtStats
{
    std::uint64_t recordsCaptured = 0; ///< pushed into a ring
    std::uint64_t recordsDropped = 0;  ///< lost to Drop overflow
    std::uint64_t blockedPushes = 0;   ///< Block-policy wait episodes

    std::uint64_t drainPasses = 0;
    std::uint64_t drainedRecords = 0;
    std::uint64_t syncStalls = 0;    ///< sync record left for later
    std::uint64_t forcedSync = 0;    ///< gate bypassed at shutdown
    std::uint64_t unresolvedPairings = 0; ///< acquire w/o release op
    std::uint64_t registryFull = 0;  ///< sync ops with no table slot

    std::uint64_t opsEmitted = 0;    ///< MemOps assigned ids
    std::uint64_t eventsEmitted = 0; ///< record mode events
    std::uint64_t syncEvents = 0;

    std::uint64_t threadsTraced = 0;
    std::uint64_t wordsMapped = 0;   ///< distinct shared words seen
    std::uint64_t inlineRaces = 0;   ///< inline mode race reports

    std::uint64_t segmentsSpilled = 0; ///< spill segments on disk
    std::uint64_t spillBytes = 0;      ///< spill file size so far
    std::uint64_t spillFailures = 0;   ///< spill writer I/O errors
};

/** See the file comment. */
class Tracer
{
  public:
    explicit Tracer(TracerConfig cfg);

    /** Stops (flushes, joins, writes) if stop() was not called. */
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    // --- annotation entry points (hot path) ---------------------

    /** Register the calling thread; assigns it a dense ProcId. */
    ProcId threadBegin();

    /** Mark the calling thread finished (its ring still drains). */
    void threadEnd();

    /** Record a data access of @p size bytes at @p addr. */
    void onData(const void *addr, std::size_t size, bool isWrite);

    /** Record an acquire (e.g. mutex lock) on sync object @p obj. */
    void onAcquire(const void *obj);

    /** Record a release (e.g. mutex unlock) on sync object @p obj. */
    void onRelease(const void *obj);

    // --- lifecycle ----------------------------------------------

    /**
     * Drain everything, stop the drain thread, finalize.  Call after
     * joining the annotated threads.  Record mode writes
     * cfg.tracePath here (if set).  Idempotent.
     */
    void stop();

    /** Foreground drain (backgroundDrain=false runs). */
    void drainAll();

    /**
     * Async-signal-safe best-effort flush: frame + fsync whatever
     * spill payload is pending.  Called by the fatal-signal handlers
     * (cfg.crashHandlers); safe to call from test code too.
     * @return whether anything was durably written.
     */
    bool crashFlush();

    /**
     * @return aggregated metrics.  Producer-side counters are safe
     * to sample any time; drain-side counters are exact (and only
     * data-race-free) once stop() has returned.
     */
    RtStats stats() const;

    /** Record mode, after stop(): move the built trace out. */
    ExecutionTrace takeTrace();

    /** Inline mode: the detector (stable after stop()). */
    const OnTheFlyDetector *detector() const { return detector_.get(); }

    /** Inline mode, after stop(): races with native addresses
     *  re-attached (RtRaceReport below). */
    struct RaceReport
    {
        OtfRace race;
        const void *nativeAddr = nullptr;
    };
    std::vector<RaceReport> inlineRaces() const;

    /** @return the native granule address behind dense word @p a. */
    const void *nativeAddrOf(Addr a) const;

    /** @return dense word id of @p addr, or kNoAddr if never seen
     *  (test/diagnostic helper; valid after stop()). */
    static constexpr Addr kNoAddr =
        std::numeric_limits<Addr>::max();
    Addr denseAddrOf(const void *addr) const;

    const TracerConfig &config() const { return cfg_; }

  private:
    /** One fixed-size annotation record. */
    enum class RecKind : std::uint8_t {
        Read,
        Write,
        Acquire,
        Release,
    };

    static constexpr std::uint64_t kNoSeq = ~0ull;

    struct RtRecord
    {
        RecKind kind = RecKind::Read;
        std::uint32_t size = 0;     ///< data: access size in bytes
        const void *addr = nullptr; ///< data address / sync object
        std::uint64_t token = 0;    ///< sync: release token observed
                                    ///  (acquire) or published (release)
        std::uint64_t seq = kNoSeq; ///< sync: per-object sequence
    };

    /** Event being assembled before the word universe is known. */
    struct StagedEvent
    {
        EventKind kind = EventKind::Computation;
        ProcId proc = kNoProc;
        OpId firstOp = kNoOp;
        OpId lastOp = kNoOp;
        std::uint32_t opCount = 0;
        std::vector<Addr> readWords;  ///< dense ids, may repeat
        std::vector<Addr> writeWords;
        MemOp syncOp;                 ///< sync events only
        std::uint64_t pairedToken = 0;
    };

    /** Per-annotated-thread state (producer + drain sides). */
    struct Channel
    {
        explicit Channel(ProcId p, std::size_t cap)
            : proc(p), ring(cap)
        {
        }

        const ProcId proc;
        SpscRing<RtRecord> ring;
        std::atomic<bool> finished{false};

        // Producer-side counters (atomic: stats() may race them).
        std::atomic<std::uint64_t> captured{0};
        std::atomic<std::uint64_t> dropped{0};
        std::atomic<std::uint64_t> blocked{0};

        // Drain-side state (single consumer, unsynchronized).
        std::uint32_t poIndex = 0;
        StagedEvent open;             ///< accumulating computation
        bool openValid = false;
        std::vector<StagedEvent> staged; ///< record mode output
    };

    Channel *channelOfCallingThread();
    void push(Channel &ch, const RtRecord &rec);

    bool drainPass(bool force);
    void drainToQuiescence();
    void processRecord(Channel &ch, const RtRecord &rec);
    void flushOpenEvent(Channel &ch);
    void emitSync(Channel &ch, const RtRecord &rec);
    void feedInline(const MemOp &op);
    Addr mapGranule(const void *granule);
    void finalize();
    void drainLoop();

    // Spill path (drain thread only).
    void spillStaged(const StagedEvent &ev);
    void maybeSealSpill(bool force);
    std::uint64_t currentDropped() const;

    /** Parsed cfg.faultSpec. */
    enum class Fault : std::uint8_t {
        None,
        CrashInDrain,
        CrashMidSegment,
        SlowChild,
    };
    void parseFault();
    void maybeFaultInDrain();

    TracerConfig cfg_;
    SyncRegistry syncs_;

    mutable std::mutex channelsMu_;
    std::vector<std::unique_ptr<Channel>> channels_;

    std::atomic<std::uint64_t> releaseTokens_{0};
    std::atomic<std::uint64_t> registryFull_{0};

    // Drain-side state (drain thread only until stop()).
    std::unordered_map<const void *, std::uint64_t> nextSeq_;
    std::unordered_map<std::uint64_t, OpId> releaseOpByToken_;
    std::unordered_map<const void *, Addr> addrMap_;
    std::vector<const void *> nativeOfDense_;
    OpId nextOp_ = 0;
    RtStats drainStats_;

    std::unique_ptr<OnTheFlyDetector> detector_;
    ExecutionTrace built_;
    bool finalized_ = false;

    /** Incremental spill writer (record mode, spillSegmentBytes>0);
     *  null when spilling is off or the file failed to open. */
    std::unique_ptr<SegmentSpillWriter> spill_;
    std::uint64_t spillFailures_ = 0;
    bool crashHandlersInstalled_ = false;

    Fault fault_ = Fault::None;
    std::uint64_t faultParam_ = 0;

    std::thread drainThread_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};

    /** Process-unique incarnation id (thread-local ABA guard). */
    const std::uint64_t epoch_;
};

} // namespace wmr::rt

#endif // WMR_RT_TRACER_HH
