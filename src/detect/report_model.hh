/**
 * @file
 * Engine-neutral report model.
 *
 * The exact bytes of a wmrace race report are a contract: golden
 * tests, the serve cache, and the streaming differential harness all
 * byte-compare them.  This header captures everything those bytes
 * depend on in plain structs with no reference to a particular
 * analysis engine, plus the single renderer that produces the text.
 * Both the whole-trace pipeline (detect/analysis) and the streaming
 * engine (stream/) fill a ReportModel; format identity then holds by
 * construction.
 */

#ifndef WMR_DETECT_REPORT_MODEL_HH
#define WMR_DETECT_REPORT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "detect/race.hh"
#include "prog/program.hh"
#include "sim/mem_op.hh"
#include "trace/event.hh"

namespace wmr {

/** Formatting options. */
struct ReportOptions
{
    /** Also list non-first partitions. */
    bool showNonFirst = true;

    /** Include per-event detail (op ranges, READ/WRITE sets).
     *  Whole-trace analysis only: the streaming engine does not keep
     *  the full event list resident. */
    bool showEvents = false;

    /** Maximum addresses printed per race. */
    std::size_t maxAddrsPerRace = 8;
};

/**
 * What a report line needs to know about one event.  A computation
 * event's line prints at most the first four addresses of each of its
 * READ and WRITE sets, so that is all the model keeps — the streaming
 * engine can retire the full sets.
 */
struct ReportEventInfo
{
    EventId id = kNoEvent;
    ProcId proc = kNoProc;
    bool isSync = false;

    /** The sync operation (valid when isSync). */
    MemOp syncOp;

    /** Member-operation count (computation events). */
    std::uint32_t opCount = 0;

    /** First four READ-set addresses, ascending. */
    std::vector<Addr> reads;

    /** First four WRITE-set addresses, ascending. */
    std::vector<Addr> writes;
};

/** One race, with both endpoint summaries and SCP classification. */
struct ReportRaceModel
{
    ReportEventInfo a;
    ReportEventInfo b;

    /** Conflict addresses, ascending and deduplicated. */
    std::vector<Addr> addrs;

    bool isDataRace = true;

    /** SCP classification (scp.raceInScp / raceMaybeInScp). */
    bool inScp = false;
    bool maybeInScp = false;
};

/** One partition as the report shows it. */
struct ReportPartitionModel
{
    /** Canonical label (RacePartition::label). */
    std::uint32_t label = 0;

    /** Indices into ReportModel::races. */
    std::vector<RaceId> races;

    bool first = false;
};

/** Everything the report renderer reads. */
struct ReportModel
{
    std::size_t numEvents = 0;
    std::uint32_t numSyncEvents = 0;
    std::uint64_t totalOps = 0;

    std::size_t numDataRaces = 0;
    bool anyDataRace = false;

    bool wholeExecutionSc = true;
    std::uint64_t scpEndOp = 0;

    std::vector<ReportRaceModel> races;

    /** In label order; firstPartitions indices follow that order. */
    std::vector<ReportPartitionModel> partitions;
    std::vector<std::uint32_t> firstPartitions;
};

/** Summarize one trace event into its report form. */
ReportEventInfo summarizeEvent(const Event &ev);

/** Render one event summary as a one-line description. */
std::string describeEventInfo(const ReportEventInfo &info,
                              const Program *prog);

/** Render race @p r of @p m as a one-line description. */
std::string describeRaceModel(const ReportModel &m, RaceId r,
                              const Program *prog,
                              const ReportOptions &opts = {});

/**
 * Render the full report from the model.  Covers everything except
 * ReportOptions::showEvents (which needs the full event list and is
 * appended by the whole-trace formatReport wrapper).
 */
std::string renderReport(const ReportModel &m, const Program *prog,
                         const ReportOptions &opts = {});

} // namespace wmr

#endif // WMR_DETECT_REPORT_MODEL_HH
