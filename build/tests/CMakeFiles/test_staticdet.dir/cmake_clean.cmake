file(REMOVE_RECURSE
  "CMakeFiles/test_staticdet.dir/test_staticdet.cc.o"
  "CMakeFiles/test_staticdet.dir/test_staticdet.cc.o.d"
  "test_staticdet"
  "test_staticdet.pdb"
  "test_staticdet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_staticdet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
