/**
 * @file
 * Deep validation of the hb layer:
 *
 *  - the clock-vector reachability index cross-checked against
 *    brute-force BFS on random graphs (with cycles), the structure
 *    the whole detector rests on;
 *  - a manufactured CYCLIC hb1 trace (possible in theory on weak
 *    systems, Sec. 3.1) driven through the full analysis pipeline.
 */

#include <gtest/gtest.h>

#include <queue>

#include "common/rng.hh"
#include "detect/analysis.hh"
#include "hb/reachability.hh"
#include "trace/execution_trace.hh"

namespace wmr {
namespace {

/** Brute-force all-pairs reachability by BFS. */
std::vector<std::vector<bool>>
bruteForce(const AdjList &g)
{
    const std::size_t n = g.size();
    std::vector<std::vector<bool>> reach(n,
                                         std::vector<bool>(n, false));
    for (std::size_t s = 0; s < n; ++s) {
        std::queue<std::uint32_t> work;
        work.push(static_cast<std::uint32_t>(s));
        reach[s][s] = true;
        while (!work.empty()) {
            const auto v = work.front();
            work.pop();
            for (const auto w : g[v]) {
                if (!reach[s][w]) {
                    reach[s][w] = true;
                    work.push(w);
                }
            }
        }
    }
    return reach;
}

TEST(ReachabilityDeep, MatchesBruteForceOnRandomGraphs)
{
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        Rng rng(seed);
        const ProcId procs = static_cast<ProcId>(2 + rng.below(4));
        const std::uint32_t perProc =
            static_cast<std::uint32_t>(3 + rng.below(10));
        const std::uint32_t n = procs * perProc;

        // po chains (required structure) + random extra edges,
        // including back edges (cycles).
        AdjList g(n);
        std::vector<ProcId> procOf(n);
        std::vector<std::uint32_t> idx(n);
        for (ProcId p = 0; p < procs; ++p) {
            for (std::uint32_t i = 0; i < perProc; ++i) {
                const std::uint32_t v = p * perProc + i;
                procOf[v] = p;
                idx[v] = i;
                if (i + 1 < perProc)
                    g[v].push_back(v + 1);
            }
        }
        const std::uint32_t extra =
            static_cast<std::uint32_t>(rng.below(2 * n));
        for (std::uint32_t e = 0; e < extra; ++e) {
            const auto a = static_cast<std::uint32_t>(rng.below(n));
            const auto b = static_cast<std::uint32_t>(rng.below(n));
            if (a != b)
                g[a].push_back(b);
        }

        const ReachabilityIndex index(g, procOf, idx, procs);
        const auto truth = bruteForce(g);
        for (std::uint32_t a = 0; a < n; ++a) {
            for (std::uint32_t b = 0; b < n; ++b) {
                ASSERT_EQ(index.reaches(a, b),
                          static_cast<bool>(truth[a][b]))
                    << "seed " << seed << " pair " << a << "->" << b;
            }
        }
    }
}

/**
 * Build a trace whose so1 pairing forms an hb1 CYCLE:
 *   P0: acquire(A) [pairs r1] ; release(B)
 *   P1: acquire(B) [pairs r0] ; release(A)
 * plus one conflicting computation event per processor.
 */
ExecutionTrace
cyclicTrace()
{
    ExecutionTrace trace;
    trace.setShape(2, 8);
    trace.setTotalOps(6);
    trace.setFirstStaleRead(kNoOp);

    const auto sync = [&](ProcId p, OpId op, Addr addr, bool acq,
                          bool rel) {
        Event ev;
        ev.kind = EventKind::Sync;
        ev.proc = p;
        ev.firstOp = ev.lastOp = op;
        ev.opCount = 1;
        ev.syncOp.id = op;
        ev.syncOp.proc = p;
        ev.syncOp.kind = acq ? OpKind::Read : OpKind::Write;
        ev.syncOp.sync = true;
        ev.syncOp.acquire = acq;
        ev.syncOp.release = rel;
        ev.syncOp.addr = addr;
        return trace.addEvent(ev);
    };
    const auto comp = [&](ProcId p, OpId op, Addr w) {
        Event ev;
        ev.kind = EventKind::Computation;
        ev.proc = p;
        ev.firstOp = ev.lastOp = op;
        ev.opCount = 1;
        ev.memberOps = {op};
        ev.writeSet.resize(8);
        ev.writeSet.set(w);
        return trace.addEvent(ev);
    };

    const EventId a0 = sync(0, 0, 4, true, false);  // acquire A
    const EventId r0 = sync(0, 1, 5, false, true);  // release B
    const EventId c0 = comp(0, 2, 7);               // write x
    const EventId a1 = sync(1, 3, 5, true, false);  // acquire B
    const EventId r1 = sync(1, 4, 4, false, true);  // release A
    const EventId c1 = comp(1, 5, 7);               // write x

    // The cyclic pairing: a0 pairs with r1, a1 pairs with r0.
    trace.mutableEvent(a0).pairedRelease = r1;
    trace.mutableEvent(a1).pairedRelease = r0;
    (void)c0;
    (void)c1;
    return trace;
}

TEST(CyclicHb1, SccGroupsTheCycle)
{
    const auto trace = cyclicTrace();
    HbGraph hb(trace);
    ReachabilityIndex reach(hb, trace);
    const auto &scc = reach.scc();
    // a0, r0, a1, r1 form one SCC (events 0,1,3,4).
    EXPECT_EQ(scc.componentOf[0], scc.componentOf[1]);
    EXPECT_EQ(scc.componentOf[0], scc.componentOf[3]);
    EXPECT_EQ(scc.componentOf[0], scc.componentOf[4]);
    // The computation events hang off the cycle.
    EXPECT_NE(scc.componentOf[2], scc.componentOf[0]);
    // Mutual order inside the cycle.
    EXPECT_TRUE(reach.ordered(0, 4));
    EXPECT_TRUE(reach.reaches(0, 4));
    EXPECT_TRUE(reach.reaches(4, 0));
}

TEST(CyclicHb1, PipelineHandlesTheCycle)
{
    // The conflicting computation events are both hb1-AFTER the
    // cycle; they are mutually unordered -> one data race, and the
    // analysis must not crash or loop on the cyclic graph.
    const auto det = analyzeTrace(cyclicTrace());
    ASSERT_EQ(det.races().size(), 1u);
    EXPECT_TRUE(det.races()[0].isDataRace);
    EXPECT_EQ(det.partitions().firstPartitions.size(), 1u);
}

TEST(CyclicHb1, ConflictingEventsInsideTheCycleAreOrdered)
{
    // Put the conflicting accesses INTO the cycle events' locations:
    // sync-sync conflicts inside one SCC count as ordered (mutual
    // hb1), so no race is reported even with the option on.
    auto trace = cyclicTrace();
    AnalysisOptions opts;
    opts.finder.includeSyncSyncRaces = true;
    const auto det = analyzeTrace(std::move(trace), opts);
    // a0 (read A) and r1 (write A) conflict but sit in one SCC.
    for (const auto &race : det.races()) {
        EXPECT_FALSE(det.trace().event(race.a).kind ==
                         EventKind::Sync &&
                     det.trace().event(race.b).kind ==
                         EventKind::Sync)
            << "sync-sync pair inside the cycle must be ordered";
    }
}

} // namespace
} // namespace wmr
