file(REMOVE_RECURSE
  "CMakeFiles/wmrace_cli.dir/wmrace_cli.cc.o"
  "CMakeFiles/wmrace_cli.dir/wmrace_cli.cc.o.d"
  "wmrace"
  "wmrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmrace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
