/**
 * @file
 * Ablation: the two hardware realizations of the weak models.
 *
 * Theorem 3.5 is a claim about the CLASS of weak implementations —
 * "all implementations of WO and RCsc and all proposed
 * implementations of DRF0 and DRF1".  This bench runs the same
 * workloads over both realizations (store buffers: delayed
 * visibility; invalidation queues: delayed death of stale copies)
 * and shows the paper's guarantees are realization-independent while
 * the MECHANISM of each SC violation differs:
 *
 *  - the buffer machine leaks reordered writes (a cold reader can
 *    see y-new/x-old);
 *  - the invalidate machine leaks stale cached copies (only a warmed
 *    reader can be fooled).
 */

#include "bench_util.hh"

#include "detect/analysis.hh"
#include "workload/random_gen.hh"
#include "workload/scenarios.hh"

namespace {

using namespace wmr;
using namespace wmr::benchutil;

void
reproduce()
{
    section("Condition 3.4 across realizations (40 racy programs "
            "each)");
    std::printf("  %-14s %8s %14s %16s %10s\n", "realization",
                "races", "stale reads", "uncovered races", "verdict");
    for (const auto realization : kAllRealizations) {
        std::size_t races = 0, uncovered = 0;
        std::uint64_t stale = 0;
        for (std::uint64_t seed = 0; seed < 40; ++seed) {
            const Program p = randomRacyProgram(seed);
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.realization = realization;
            opts.seed = seed;
            opts.drainLaziness = 0.95;
            const auto res = runProgram(p, opts);
            stale += res.staleReads;
            const auto det = analyzeExecution(res);
            races += det.numDataRaces();
            uncovered += checkCondition34(det.races(), det.scp(),
                                          det.augmented())
                             .size();
        }
        std::printf("  %-14s %8zu %14llu %16zu %10s\n",
                    std::string(realizationName(realization))
                        .c_str(),
                    races, static_cast<unsigned long long>(stale),
                    uncovered, uncovered == 0 ? "HOLDS" : "FAILS");
    }

    section("race-free programs stay SC on both (Condition 3.4(1))");
    std::printf("  %-14s %14s %10s\n", "realization", "stale reads",
                "races");
    for (const auto realization : kAllRealizations) {
        std::uint64_t stale = 0;
        std::size_t races = 0;
        for (std::uint64_t seed = 0; seed < 25; ++seed) {
            const Program p = randomRaceFreeProgram(seed);
            ExecOptions opts;
            opts.model = ModelKind::WO;
            opts.realization = realization;
            opts.seed = seed;
            opts.drainLaziness = 0.9;
            const auto res = runProgram(p, opts);
            stale += res.staleReads;
            races += analyzeExecution(res).numDataRaces();
        }
        std::printf("  %-14s %14llu %10zu\n",
                    std::string(realizationName(realization))
                        .c_str(),
                    static_cast<unsigned long long>(stale), races);
    }

    section("the violation mechanisms differ");
    {
        const auto buf = stageFigure1aViolation();
        std::printf("  store-buffer figure 1a: P2 sees y=%lld x=%lld "
                    "(reordered drain; cold reader fooled)\n",
                    static_cast<long long>(buf.result.finalRegs[1][0]),
                    static_cast<long long>(
                        buf.result.finalRegs[1][1]));
        const auto inv = stageInvalidateFigure1a();
        std::printf("  invalidate   figure 1a: P2 sees y=%lld x=%lld "
                    "(stale cached copy; warm-up read required)\n",
                    static_cast<long long>(inv.result.finalRegs[1][0]),
                    static_cast<long long>(
                        inv.result.finalRegs[1][1]));
    }
    note("two different microarchitectures, one guarantee: SC is "
         "preserved until a");
    note("data race occurs, and the detector's report is identical "
         "in structure.");
}

void
BM_RunRealization(benchmark::State &state)
{
    const auto realization =
        static_cast<Realization>(state.range(0));
    const Program p = randomRacyProgram(3);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        ExecOptions opts;
        opts.model = ModelKind::WO;
        opts.realization = realization;
        opts.seed = ++seed;
        benchmark::DoNotOptimize(runProgram(p, opts).ops.size());
    }
}
BENCHMARK(BM_RunRealization)->Arg(0)->Arg(1)->ArgName("realization");

} // namespace

WMR_BENCH_MAIN(reproduce)
