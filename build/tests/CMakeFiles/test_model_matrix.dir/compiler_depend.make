# Empty compiler generated dependencies file for test_model_matrix.
# This may be replaced when dependencies are built.
