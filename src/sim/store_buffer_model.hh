/**
 * @file
 * Store-buffer realization of the SC and weak memory models.
 *
 * Global state is a flat word array plus, per word, the id of the
 * last write made globally visible ("the coherence point").  Each
 * processor owns an *unordered* buffer of pending stores: a store
 * retires into the buffer immediately and becomes globally visible
 * when drained.  Drain order is random except that two pending stores
 * to the SAME word by the same processor drain in program order
 * (per-location coherence).  Unordered drain is what lets another
 * processor observe "write(y) before write(x)" — the Figure 1a / 2b
 * violation shape.  Two policy refinements restrict drain order
 * further: ModelPolicy::fifoDrain (TSO) makes the whole buffer FIFO,
 * and store-store fence epochs (PSO sfence) forbid draining a store
 * while an earlier-epoch store of the same processor is buffered.
 *
 * A processor's own reads forward from its newest pending store to
 * the address; remote reads see only the global array.  Sync
 * operations always access the global array atomically, after the
 * drains the model's policy mandates.
 *
 * Staleness (end of the guaranteed SCP): alongside the real state we
 * keep a *shadow* memory updated at ISSUE time by every write.  The
 * issue order is a legal SC interleaving of the program, so as long
 * as every read returns the shadow writer's value, the execution IS
 * sequentially consistent (witnessed by issue order).  A read whose
 * observed writer differs from the shadow writer is flagged stale;
 * such a read can only happen when an unsynchronized conflicting
 * access is in flight — a data race — which is how Condition 3.4
 * emerges from the implementation rather than being bolted on.
 */

#ifndef WMR_SIM_STORE_BUFFER_MODEL_HH
#define WMR_SIM_STORE_BUFFER_MODEL_HH

#include <vector>

#include "sim/model.hh"

namespace wmr {

/** Policy knobs distinguishing the seven models. */
struct ModelPolicy
{
    ModelKind kind = ModelKind::WO;

    /** No buffering at all: SC. */
    bool noBuffer = false;

    /** Drain before EVERY sync operation (WO, DRF0, TSO, PSO). */
    bool drainOnAllSync = true;

    /** Drain before release writes (all weak models). */
    bool drainOnRelease = true;

    /** Pipelined drain cost accounting (DRF0, DRF1). */
    bool pipelinedDrain = false;

    /**
     * The buffer drains strictly first-in-first-out (TSO): only the
     * oldest pending store is ever drainable, so remote processors
     * can never observe W->W reordering — only W->R (a read bypasses
     * the buffered stores of its own processor via forwarding).
     */
    bool fifoDrain = false;
};

/** @return the policy implementing @p kind. */
ModelPolicy policyFor(ModelKind kind);

/** Store-buffer based memory model (all seven kinds). */
class StoreBufferModel : public MemoryModel
{
  public:
    StoreBufferModel(ModelPolicy policy, ProcId procs, Addr words,
                     const CostParams &cost, double drainLaziness);

    ModelKind kind() const override { return policy_.kind; }

    ReadResult readData(ProcId proc, Addr addr) override;
    WriteResult writeData(ProcId proc, Addr addr, Value value,
                          OpId id) override;
    ReadResult readSync(ProcId proc, Addr addr, bool acquire) override;
    WriteResult writeSync(ProcId proc, Addr addr, Value value, OpId id,
                          bool release) override;
    Tick fence(ProcId proc) override;
    Tick fenceStoreStore(ProcId proc) override;
    void tick(Rng &rng) override;
    void drainAll() override;
    void drainAddr(ProcId proc, Addr addr) override;
    std::size_t pendingStores(ProcId proc) const override;
    Value globalValue(Addr addr) const override;
    const std::vector<OpId> &visibilityOrder() const override
    {
        return visibility_;
    }

  private:
    /** One store waiting in a processor's buffer. */
    struct PendingStore
    {
        Addr addr;
        Value value;
        OpId id;

        /** Store-store fence epoch: a store may only drain once no
         *  earlier-epoch store of its processor remains buffered. */
        std::uint32_t epoch = 0;
    };

    void ensureAddr(Addr addr);

    /** Make buffer entry @p idx of @p proc globally visible. */
    void drainEntry(ProcId proc, std::size_t idx);

    /** Drain everything @p proc has buffered; @return entries drained. */
    std::size_t drainProc(ProcId proc);

    /** @return stall cycles for draining @p n entries. */
    Tick drainCost(std::size_t n) const;

    /** Record a write in the issue-order shadow memory. */
    void shadowWrite(Addr addr, OpId id, Value value);

    /** Make @p id globally visible in the witnessed coherence order. */
    void witnessVisible(OpId id);

    /** @return the smallest sfence epoch still buffered by @p proc. */
    std::uint32_t minEpoch(ProcId proc) const;

    /** Build a ReadResult for @p proc reading @p addr globally. */
    ReadResult globalRead(ProcId proc, Addr addr, Tick cost);

    ModelPolicy policy_;
    CostParams cost_;
    double drainLaziness_;

    std::vector<Value> memory_;
    std::vector<OpId> lastWriter_;

    // Issue-order SC witness (what a sequentially consistent memory
    // would currently hold).
    std::vector<Value> shadowMemory_;
    std::vector<OpId> shadowWriter_;

    std::vector<std::vector<PendingStore>> buffers_;

    /** Per-processor current sfence epoch for newly issued stores. */
    std::vector<std::uint32_t> epochs_;

    /** Witnessed coherence order (see MemoryModel::visibilityOrder). */
    std::vector<OpId> visibility_;
};

} // namespace wmr

#endif // WMR_SIM_STORE_BUFFER_MODEL_HH
