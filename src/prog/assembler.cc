#include "prog/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "prog/builder.hh"

namespace wmr {

namespace {

/** Parsing context threaded through the helpers for diagnostics. */
struct Ctx
{
    int line = 0;
    std::map<std::string, Addr> *symbols = nullptr;

    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal("assembler: line %d: %s", line, msg.c_str());
    }
};

bool
parseInt(std::string_view text, Value &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const std::string buf(text);
    const long long v = std::strtoll(buf.c_str(), &end, 0);
    if (end != buf.c_str() + buf.size())
        return false;
    out = static_cast<Value>(v);
    return true;
}

RegId
parseReg(const Ctx &ctx, std::string_view text)
{
    if (text.size() < 2 || (text[0] != 'r' && text[0] != 'R'))
        ctx.err(strformat("expected register, got '%.*s'",
                          static_cast<int>(text.size()), text.data()));
    Value idx = 0;
    if (!parseInt(text.substr(1), idx) || idx < 0 ||
        idx >= static_cast<Value>(kNumRegs)) {
        ctx.err(strformat("bad register '%.*s'",
                          static_cast<int>(text.size()), text.data()));
    }
    return static_cast<RegId>(idx);
}

Value
parseImm(const Ctx &ctx, std::string_view text)
{
    Value v = 0;
    if (!parseInt(text, v))
        ctx.err(strformat("expected immediate, got '%.*s'",
                          static_cast<int>(text.size()), text.data()));
    return v;
}

/** Parsed [base(+rI)] effective-address operand. */
struct EaOperand
{
    Addr base = 0;
    bool indexed = false;
    RegId index = 0;
};

EaOperand
parseEa(const Ctx &ctx, std::string_view text)
{
    if (text.size() < 3 || text.front() != '[' || text.back() != ']')
        ctx.err(strformat("expected [addr] operand, got '%.*s'",
                          static_cast<int>(text.size()), text.data()));
    std::string_view inner = text.substr(1, text.size() - 2);
    EaOperand ea;
    std::string_view base = inner;
    const std::size_t plus = inner.find('+');
    if (plus != std::string_view::npos) {
        base = trim(inner.substr(0, plus));
        const std::string_view idx = trim(inner.substr(plus + 1));
        ea.indexed = true;
        ea.index = parseReg(ctx, idx);
    }
    base = trim(base);
    Value num = 0;
    if (parseInt(base, num)) {
        if (num < 0)
            ctx.err("negative base address");
        ea.base = static_cast<Addr>(num);
    } else {
        const auto it = ctx.symbols->find(std::string(base));
        if (it == ctx.symbols->end())
            ctx.err(strformat("unknown variable '%.*s'",
                              static_cast<int>(base.size()), base.data()));
        ea.base = it->second;
    }
    return ea;
}

/** Split an operand list on commas, trimming each field. */
std::vector<std::string>
operands(std::string_view text)
{
    std::vector<std::string> out;
    if (trim(text).empty())
        return out;
    for (auto &field : split(text, ','))
        out.emplace_back(trim(field));
    return out;
}

void
expectArity(const Ctx &ctx, const std::vector<std::string> &ops,
            std::size_t n, std::string_view mnemonic)
{
    if (ops.size() != n) {
        ctx.err(strformat("%.*s expects %zu operands, got %zu",
                          static_cast<int>(mnemonic.size()),
                          mnemonic.data(), n, ops.size()));
    }
}

} // namespace

Program
assemble(std::string_view source)
{
    ProgramBuilder pb;
    std::map<std::string, Addr> symbols;
    Ctx ctx;
    ctx.symbols = &symbols;

    // Each thread's lines are collected, then emitted through a
    // ThreadBuilder so labels resolve forward and backward.
    std::optional<ThreadBuilder> tb;

    const auto flushThread = [&]() {
        if (tb) {
            pb.thread(*tb);
            tb.reset();
        }
    };

    std::istringstream in{std::string(source)};
    std::string raw;
    while (std::getline(in, raw)) {
        ++ctx.line;
        // Strip comments.
        std::string_view line = raw;
        const std::size_t hash = line.find_first_of("#;");
        if (hash != std::string_view::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        if (line[0] == '.') {
            const auto fields = splitWhitespace(line);
            if (fields[0] == ".var") {
                if (fields.size() != 3 && fields.size() != 4)
                    ctx.err(".var NAME ADDR [INITIAL]");
                const Value addr = parseImm(ctx, fields[2]);
                const Value initv =
                    fields.size() == 4 ? parseImm(ctx, fields[3]) : 0;
                symbols[fields[1]] = static_cast<Addr>(addr);
                pb.var(fields[1], static_cast<Addr>(addr), initv);
            } else if (fields[0] == ".init") {
                if (fields.size() != 3)
                    ctx.err(".init ADDR VALUE");
                pb.init(static_cast<Addr>(parseImm(ctx, fields[1])),
                        parseImm(ctx, fields[2]));
            } else if (fields[0] == ".thread") {
                flushThread();
                tb.emplace();
            } else {
                ctx.err(strformat("unknown directive '%s'",
                                  fields[0].c_str()));
            }
            continue;
        }

        if (!tb)
            ctx.err("instruction before .thread");

        // Optional "LABEL:" prefix.
        std::string_view rest = line;
        const std::size_t colon = rest.find(':');
        if (colon != std::string_view::npos &&
            rest.find('[') > colon) {
            tb->label(std::string(trim(rest.substr(0, colon))));
            rest = trim(rest.substr(colon + 1));
            if (rest.empty())
                continue;
        }

        // Mnemonic and operand list.
        std::size_t sp = rest.find_first_of(" \t");
        const std::string mnem(
            rest.substr(0, sp == std::string_view::npos ? rest.size()
                                                        : sp));
        const auto ops = operands(
            sp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sp + 1));

        if (mnem == "nop") {
            expectArity(ctx, ops, 0, mnem);
            tb->nop();
        } else if (mnem == "movi") {
            expectArity(ctx, ops, 2, mnem);
            tb->movi(parseReg(ctx, ops[0]), parseImm(ctx, ops[1]));
        } else if (mnem == "mov") {
            expectArity(ctx, ops, 2, mnem);
            tb->mov(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]));
        } else if (mnem == "add") {
            expectArity(ctx, ops, 3, mnem);
            tb->add(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]),
                    parseReg(ctx, ops[2]));
        } else if (mnem == "addi") {
            expectArity(ctx, ops, 3, mnem);
            tb->addi(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]),
                     parseImm(ctx, ops[2]));
        } else if (mnem == "sub") {
            expectArity(ctx, ops, 3, mnem);
            tb->sub(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]),
                    parseReg(ctx, ops[2]));
        } else if (mnem == "mul") {
            expectArity(ctx, ops, 3, mnem);
            tb->mul(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]),
                    parseReg(ctx, ops[2]));
        } else if (mnem == "cmpeq") {
            expectArity(ctx, ops, 3, mnem);
            tb->cmpeq(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]),
                      parseReg(ctx, ops[2]));
        } else if (mnem == "cmpne") {
            expectArity(ctx, ops, 3, mnem);
            tb->cmpne(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]),
                      parseReg(ctx, ops[2]));
        } else if (mnem == "cmplt") {
            expectArity(ctx, ops, 3, mnem);
            tb->cmplt(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]),
                      parseReg(ctx, ops[2]));
        } else if (mnem == "cmpeqi") {
            expectArity(ctx, ops, 3, mnem);
            tb->cmpeqi(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]),
                       parseImm(ctx, ops[2]));
        } else if (mnem == "cmplti") {
            expectArity(ctx, ops, 3, mnem);
            tb->cmplti(parseReg(ctx, ops[0]), parseReg(ctx, ops[1]),
                       parseImm(ctx, ops[2]));
        } else if (mnem == "load") {
            expectArity(ctx, ops, 2, mnem);
            const auto ea = parseEa(ctx, ops[1]);
            if (ea.indexed)
                tb->loadIdx(parseReg(ctx, ops[0]), ea.base, ea.index);
            else
                tb->load(parseReg(ctx, ops[0]), ea.base);
        } else if (mnem == "store") {
            expectArity(ctx, ops, 2, mnem);
            const auto ea = parseEa(ctx, ops[0]);
            if (ea.indexed)
                tb->storeIdx(ea.base, ea.index, parseReg(ctx, ops[1]));
            else
                tb->store(ea.base, parseReg(ctx, ops[1]));
        } else if (mnem == "storei") {
            expectArity(ctx, ops, 2, mnem);
            const auto ea = parseEa(ctx, ops[0]);
            if (ea.indexed)
                tb->storeiIdx(ea.base, ea.index, parseImm(ctx, ops[1]));
            else
                tb->storei(ea.base, parseImm(ctx, ops[1]));
        } else if (mnem == "tas") {
            expectArity(ctx, ops, 2, mnem);
            const auto ea = parseEa(ctx, ops[1]);
            if (ea.indexed)
                ctx.err("tas does not support indexed addressing");
            tb->tas(parseReg(ctx, ops[0]), ea.base);
        } else if (mnem == "unset") {
            expectArity(ctx, ops, 1, mnem);
            const auto ea = parseEa(ctx, ops[0]);
            if (ea.indexed)
                ctx.err("unset does not support indexed addressing");
            tb->unset(ea.base);
        } else if (mnem == "syncload") {
            expectArity(ctx, ops, 2, mnem);
            const auto ea = parseEa(ctx, ops[1]);
            if (ea.indexed)
                ctx.err("syncload does not support indexed addressing");
            tb->syncload(parseReg(ctx, ops[0]), ea.base);
        } else if (mnem == "syncstore") {
            expectArity(ctx, ops, 2, mnem);
            const auto ea = parseEa(ctx, ops[0]);
            if (ea.indexed)
                ctx.err("syncstore does not support indexed addressing");
            tb->syncstore(ea.base, parseReg(ctx, ops[1]));
        } else if (mnem == "syncstorei") {
            expectArity(ctx, ops, 2, mnem);
            const auto ea = parseEa(ctx, ops[0]);
            if (ea.indexed)
                ctx.err("syncstorei does not support indexed addressing");
            tb->syncstorei(ea.base, parseImm(ctx, ops[1]));
        } else if (mnem == "fence" || mnem == "mfence") {
            expectArity(ctx, ops, 0, mnem);
            tb->fence();
        } else if (mnem == "sfence") {
            expectArity(ctx, ops, 0, mnem);
            tb->sfence();
        } else if (mnem == "bnz") {
            expectArity(ctx, ops, 2, mnem);
            Value pc = 0;
            if (parseInt(ops[1], pc))
                tb->bnzAt(parseReg(ctx, ops[0]),
                          static_cast<std::uint32_t>(pc));
            else
                tb->bnz(parseReg(ctx, ops[0]), ops[1]);
        } else if (mnem == "bz") {
            expectArity(ctx, ops, 2, mnem);
            Value pc = 0;
            if (parseInt(ops[1], pc))
                tb->bzAt(parseReg(ctx, ops[0]),
                         static_cast<std::uint32_t>(pc));
            else
                tb->bz(parseReg(ctx, ops[0]), ops[1]);
        } else if (mnem == "jmp") {
            expectArity(ctx, ops, 1, mnem);
            Value pc = 0;
            if (parseInt(ops[0], pc))
                tb->jmpAt(static_cast<std::uint32_t>(pc));
            else
                tb->jmp(ops[0]);
        } else if (mnem == "halt") {
            expectArity(ctx, ops, 0, mnem);
            tb->halt();
        } else {
            ctx.err(strformat("unknown mnemonic '%s'", mnem.c_str()));
        }
    }
    flushThread();
    return pb.build();
}

Program
assembleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open program file '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return assemble(buf.str());
}

} // namespace wmr
