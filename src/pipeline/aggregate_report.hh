/**
 * @file
 * Aggregated corpus reports: the deterministic output of a batch run.
 *
 * Both renderings (plain text and JSON) are pure functions of the
 * per-trace results in corpus order — no timing, no worker count, no
 * machine state — so the bytes are identical for --jobs 1 and
 * --jobs N.  That property is load-bearing: the determinism test and
 * the ThreadSanitizer CTest entry both diff these strings across job
 * counts.  Timing belongs in metrics.hh.
 */

#ifndef WMR_PIPELINE_AGGREGATE_REPORT_HH
#define WMR_PIPELINE_AGGREGATE_REPORT_HH

#include <string>

#include "pipeline/batch_runner.hh"

namespace wmr {

/** Formatting knobs of the text report. */
struct BatchReportOptions
{
    /** List every trace (not just failures and the summary). */
    bool showPerTrace = true;
};

/** Deterministic aggregate totals over the ok() traces. */
struct BatchTotals
{
    std::size_t analyzed = 0;
    std::size_t failed = 0;
    std::size_t skipped = 0;

    /** Damaged segmented traces analyzed from a recovered prefix. */
    std::size_t salvaged = 0;

    /** so1 pairings lost across all salvaged traces. */
    std::uint64_t unresolvedPairings = 0;

    /** Recorder Drop-policy losses across all analyzed traces. */
    std::uint64_t droppedDataRecords = 0;

    std::size_t tracesWithDataRaces = 0;
    std::size_t tracesFullySc = 0;
    std::uint64_t events = 0;
    std::uint64_t ops = 0;
    std::uint64_t races = 0;
    std::uint64_t dataRaces = 0;
    std::uint64_t partitions = 0;
    std::uint64_t firstPartitions = 0;
    std::uint64_t reportedRaces = 0;
};

/** Fold @p batch's per-trace results into totals. */
BatchTotals computeTotals(const BatchResult &batch);

/** Render the human-readable aggregated report. */
std::string formatBatchReport(const BatchResult &batch,
                              const BatchReportOptions &opts = {});

/**
 * Render the machine-readable report (schema
 * "wmrace-batch-report" v1; see docs/BATCH.md).
 */
std::string batchReportJson(const BatchResult &batch);

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace wmr

#endif // WMR_PIPELINE_AGGREGATE_REPORT_HH
