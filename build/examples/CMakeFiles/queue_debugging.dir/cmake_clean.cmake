file(REMOVE_RECURSE
  "CMakeFiles/queue_debugging.dir/queue_debugging.cpp.o"
  "CMakeFiles/queue_debugging.dir/queue_debugging.cpp.o.d"
  "queue_debugging"
  "queue_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
