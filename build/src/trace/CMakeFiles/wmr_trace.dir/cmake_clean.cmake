file(REMOVE_RECURSE
  "CMakeFiles/wmr_trace.dir/event.cc.o"
  "CMakeFiles/wmr_trace.dir/event.cc.o.d"
  "CMakeFiles/wmr_trace.dir/execution_trace.cc.o"
  "CMakeFiles/wmr_trace.dir/execution_trace.cc.o.d"
  "CMakeFiles/wmr_trace.dir/timeline.cc.o"
  "CMakeFiles/wmr_trace.dir/timeline.cc.o.d"
  "CMakeFiles/wmr_trace.dir/trace_io.cc.o"
  "CMakeFiles/wmr_trace.dir/trace_io.cc.o.d"
  "libwmr_trace.a"
  "libwmr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
