#include "workload/random_gen.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "prog/builder.hh"

namespace wmr {

Program
randomProgram(const RandomProgConfig &cfg)
{
    wmr_assert(cfg.numLocks > 0);
    wmr_assert(cfg.dataWords >= cfg.numLocks); // lock-ownership map
    wmr_assert(cfg.procs > 0);

    Rng rng(cfg.seed);
    const Addr dataBase = cfg.numLocks;

    ProgramBuilder pb;
    for (std::uint32_t l = 0; l < cfg.numLocks; ++l)
        pb.var("lock" + std::to_string(l), l, 0);
    for (Addr d = 0; d < cfg.dataWords; ++d)
        pb.var("d" + std::to_string(d), dataBase + d, 0);

    for (ProcId p = 0; p < cfg.procs; ++p) {
        ThreadBuilder t;
        for (std::uint32_t b = 0; b < cfg.blocksPerProc; ++b) {
            const std::uint32_t lock =
                static_cast<std::uint32_t>(rng.below(cfg.numLocks));
            const bool locked = !rng.chance(cfg.unlockedProb);
            if (locked)
                t.acquireLock(lock, 0);
            for (std::uint32_t o = 0; o < cfg.opsPerBlock; ++o) {
                // Pick a data word owned by this block's lock.
                Addr w = static_cast<Addr>(rng.below(cfg.dataWords));
                if (cfg.dataWords >= cfg.numLocks)
                    w = w - (w % cfg.numLocks) + lock;
                if (w >= cfg.dataWords)
                    w -= cfg.numLocks;
                const Addr addr = dataBase + w;
                if (rng.chance(cfg.writeProb)) {
                    t.storei(addr,
                             static_cast<Value>(rng.below(1000)));
                } else {
                    t.load(static_cast<RegId>(1 + rng.below(6)),
                           addr);
                }
            }
            if (locked)
                t.releaseLock(lock);
        }
        t.halt();
        pb.thread(t);
    }
    return pb.build();
}

Program
randomRaceFreeProgram(std::uint64_t seed, ProcId procs)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = procs;
    cfg.unlockedProb = 0.0;
    return randomProgram(cfg);
}

Program
randomRacyProgram(std::uint64_t seed, ProcId procs)
{
    RandomProgConfig cfg;
    cfg.seed = seed;
    cfg.procs = procs;
    cfg.unlockedProb = 0.35;
    return randomProgram(cfg);
}

} // namespace wmr
