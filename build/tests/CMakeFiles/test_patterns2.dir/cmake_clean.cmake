file(REMOVE_RECURSE
  "CMakeFiles/test_patterns2.dir/test_patterns2.cc.o"
  "CMakeFiles/test_patterns2.dir/test_patterns2.cc.o.d"
  "test_patterns2"
  "test_patterns2.pdb"
  "test_patterns2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patterns2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
