/**
 * @file
 * The post-mortem workflow with real trace files, as Section 4.1
 * prescribes: an instrumented execution phase that writes trace
 * files, and a separate analysis phase that reads them back.
 *
 *   $ ./trace_workflow run   prog.wm trace.bin   # phase 1
 *   $ ./trace_workflow check trace.bin           # phase 2
 *   $ ./trace_workflow demo                      # both, built-in
 *
 * `prog.wm` is a wmrace assembly file (see prog/assembler.hh for the
 * grammar).  The demo mode uses the producer/consumer pattern with
 * an injected bug.
 */

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "detect/analysis.hh"
#include "detect/report.hh"
#include "prog/assembler.hh"
#include "trace/trace_io.hh"
#include "workload/patterns.hh"

namespace {

using namespace wmr;

int
phaseRun(const Program &prog, const std::string &tracePath)
{
    ExecOptions opts;
    opts.model = ModelKind::WO;
    opts.seed = 2026;
    opts.drainLaziness = 0.8;
    const ExecutionResult res = runProgram(prog, opts);
    if (!res.completed) {
        std::printf("execution truncated (spin without progress?)\n");
        return 1;
    }
    const ExecutionTrace trace =
        buildTrace(res, {.keepMemberOps = true});
    const std::size_t bytes = writeTraceFile(trace, tracePath);
    std::printf("phase 1: executed %zu memory operations on %s, "
                "wrote %zu events (%zu bytes) to %s\n",
                res.ops.size(),
                std::string(modelName(opts.model)).c_str(),
                trace.events().size(), bytes, tracePath.c_str());
    return 0;
}

int
phaseCheck(const std::string &tracePath, const Program *prog)
{
    const ExecutionTrace trace = readTraceFile(tracePath);
    std::printf("phase 2: loaded %zu events (%llu operations) from "
                "%s\n\n",
                trace.events().size(),
                static_cast<unsigned long long>(trace.totalOps()),
                tracePath.c_str());
    const DetectionResult det = analyzeTrace(trace);
    std::printf("%s", formatReport(det, prog).c_str());
    return det.anyDataRace() ? 1 : 0;
}

int
demo()
{
    std::printf("demo: producer/consumer with a racy head index\n\n");
    const Program prog =
        producerConsumer(/*items=*/6, /*slots=*/3, /*racy=*/true);
    const std::string path = "/tmp/wmrace_demo_trace.bin";
    if (phaseRun(prog, path) != 0)
        return 1;
    std::printf("\n");
    const int rc = phaseCheck(path, &prog);
    std::remove(path.c_str());
    std::printf("\nthe racy head publication shows up as the first "
                "partition;\nrun with producerConsumer(...,false) to "
                "see the clean report.\n");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "demo") == 0)
        return demo();
    if (argc == 4 && std::strcmp(argv[1], "run") == 0) {
        const Program prog = assembleFile(argv[2]);
        return phaseRun(prog, argv[3]);
    }
    if (argc == 3 && std::strcmp(argv[1], "check") == 0)
        return phaseCheck(argv[2], nullptr);
    std::printf("usage:\n"
                "  %s run <prog.wm> <trace.bin>   instrumented run\n"
                "  %s check <trace.bin>           post-mortem check\n"
                "  %s demo                        built-in demo\n",
                argv[0], argv[0], argv[0]);
    return demo();
}
