file(REMOVE_RECURSE
  "libwmr_common.a"
)
