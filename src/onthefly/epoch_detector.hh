/**
 * @file
 * FastTrack-style epoch race detector (adaptive representation).
 *
 * The insight of FastTrack (Flanagan & Freund, PLDI'09) applied to
 * this codebase's detectors: most locations are accessed in a way
 * that is totally ordered by hb1, so a single (processor, timestamp)
 * EPOCH suffices for the last write and usually for reads; the full
 * read vector is materialized only when reads are concurrent.  Same
 * race verdicts as the full vector-clock detector on write-write and
 * write-read pairs, with O(1) work in the common case — the stats
 * counters let bench_sec5_overhead show the constant-factor gap.
 */

#ifndef WMR_ONTHEFLY_EPOCH_DETECTOR_HH
#define WMR_ONTHEFLY_EPOCH_DETECTOR_HH

#include "onthefly/clock_base.hh"

namespace wmr {

/** FastTrack-style adaptive epoch detector. */
class EpochDetector : public ClockedDetectorBase
{
  public:
    EpochDetector(ProcId nprocs, Addr words,
                  std::size_t maxPublishedClocks = 0);

    void onOp(const MemOp &op) override;

  private:
    /** An epoch: one processor's scalar timestamp. */
    struct Epoch
    {
        ProcId proc = kNoProc;
        std::uint64_t ts = 0;
        std::uint32_t pc = 0;

        bool valid() const { return proc != kNoProc; }
    };

    /** Per-location adaptive metadata. */
    struct LocState
    {
        Epoch write;            ///< last-write epoch
        Epoch read;             ///< last-read epoch (shared mode off)
        bool sharedReads = false;
        std::vector<std::uint64_t> readVec; ///< inflated read clock
        std::vector<std::uint32_t> readPcVec;
        VectorClock syncFallback;
    };

    LocState &loc(Addr addr);
    void dataRead(const MemOp &op);
    void dataWrite(const MemOp &op);

    std::vector<LocState> locs_;
};

} // namespace wmr

#endif // WMR_ONTHEFLY_EPOCH_DETECTOR_HH
