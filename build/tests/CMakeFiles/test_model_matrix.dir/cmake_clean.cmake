file(REMOVE_RECURSE
  "CMakeFiles/test_model_matrix.dir/test_model_matrix.cc.o"
  "CMakeFiles/test_model_matrix.dir/test_model_matrix.cc.o.d"
  "test_model_matrix"
  "test_model_matrix.pdb"
  "test_model_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
