/**
 * @file
 * Unit tests of the serve subsystem (src/serve/): protocol framing,
 * the content-addressed result cache (memory LRU + disk tier), and
 * the server end to end over real unix-domain sockets — cache-hit
 * byte-identity, admission-control overload rejection, graceful
 * drain, and crash recovery from the request spool.
 *
 * The server tests talk to an in-process Server through the public
 * client (serve/client.hh), exactly as `wmrace submit` does, so
 * every wire path is the production one.  Deterministic overload is
 * produced with ServeOptions::testAnalysisGate: workers park on a
 * latch, the bounded queue floods, tryPush rejects.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/hash64.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"
#include "common/string_util.hh"
#include "detect/analysis.hh"
#include "detect/report.hh"
#include "pipeline/batch_runner.hh"
#include "pipeline/checkpoint.hh"
#include "serve/client.hh"
#include "serve/io_util.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"
#include "trace/segmented_io.hh"
#include "trace/trace_io.hh"
#include "workload/synthetic_trace.hh"

namespace fs = std::filesystem;

using namespace wmr;
using namespace wmr::serve;

namespace {

/** mkdtemp-backed scratch directory, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char buf[] = "/tmp/wmrserveXXXXXX";
        const char *p = ::mkdtemp(buf);
        EXPECT_NE(p, nullptr);
        path = p ? p : "";
    }

    ~TempDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            fs::remove_all(path, ec);
        }
    }
};

/** A small deterministic event-format trace, distinct per seed. */
std::vector<std::uint8_t>
makeTraceBytes(std::uint64_t seed)
{
    SyntheticTraceOptions o;
    o.procs = 4;
    o.eventsPerProc = 120;
    o.seed = seed;
    return serializeTrace(makeSyntheticTrace(o));
}

/** What `wmrace check` prints for a clean event-format upload —
 *  the byte-identity reference for served reports. */
std::string
localCheckReport(const std::vector<std::uint8_t> &bytes)
{
    ExecutionTrace trace = deserializeTrace(bytes);
    const DetectionResult det = analyzeTrace(std::move(trace));
    return formatTraceProvenance(false, SalvageInfo{}) +
           formatReport(det);
}

/** The `wmrace check --salvage` twin for damaged segmented bytes. */
std::string
localSalvageReport(const std::vector<std::uint8_t> &bytes)
{
    SegTraceReadResult seg = trySalvageTrace(bytes);
    EXPECT_TRUE(seg.ok()) << seg.error;
    const SalvageInfo salvage = seg.salvage;
    const DetectionResult det = analyzeTrace(std::move(seg.trace));
    return formatTraceProvenance(true, salvage) + formatReport(det);
}

/** A worker latch for testAnalysisGate: workers entering the gate
 *  block until release(); the test observes how many arrived. */
struct AnalysisGate
{
    std::mutex mu;
    std::condition_variable cv;
    unsigned entered = 0;
    bool open = false;

    std::function<void()>
    hook()
    {
        return [this] {
            std::unique_lock<std::mutex> lk(mu);
            ++entered;
            cv.notify_all();
            cv.wait(lk, [this] { return open; });
        };
    }

    void
    waitEntered(unsigned n)
    {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return entered >= n; });
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lk(mu);
        open = true;
        cv.notify_all();
    }
};

/** Poll until @p pred holds (bounded; the suites are deadline-free
 *  but CI boxes stall). */
template <typename Pred>
bool
pollFor(Pred pred, std::chrono::seconds limit = std::chrono::seconds(30))
{
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------
// Protocol framing
// ---------------------------------------------------------------

TEST(ServeProtocol, RequestFrameRoundTripsOverSocket)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    Request req;
    req.command = Command::Analyze;
    req.flags = kReqSalvage | kReqNoCache;
    req.body = {0x00, 0x01, 0xfe, 0xff, 0x42};

    const std::vector<std::uint8_t> frame = encodeRequestFrame(req);
    ASSERT_TRUE(writeAll(sv[0], frame.data(), frame.size()));

    Request got;
    std::string error;
    EXPECT_EQ(readRequest(sv[1], 1 << 20, got, error),
              FrameReadStatus::Ok)
        << error;
    EXPECT_EQ(got.command, Command::Analyze);
    EXPECT_EQ(got.flags, req.flags);
    EXPECT_EQ(got.body, req.body);

    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(ServeProtocol, ResponseFrameRoundTripsBothDecoders)
{
    Response resp;
    resp.status = RespStatus::Ok;
    resp.flags = kRespAnyDataRace | kRespSalvaged;
    resp.retryAfterMs = 77;
    resp.meta.fileBytes = 1234;
    resp.meta.events = 99;
    resp.meta.syncEvents = 12;
    resp.meta.ops = 400;
    resp.meta.races = 3;
    resp.meta.dataRaces = 2;
    resp.meta.partitions = 5;
    resp.meta.firstPartitions = 1;
    resp.meta.reportedRaces = 2;
    resp.meta.anyDataRace = true;
    resp.meta.salvaged = true;
    resp.meta.unresolvedPairings = 7;
    resp.meta.droppedDataRecords = 8;
    resp.meta.contentHash = 0xdeadbeefcafef00dull;
    resp.report = "REPORT BODY\nline two\n";

    const std::vector<std::uint8_t> frame =
        encodeResponseFrame(resp);

    // The in-memory decoder (the disk cache's read path).
    Response got;
    std::string error;
    ASSERT_TRUE(
        decodeResponseFrame(frame.data(), frame.size(), got, error))
        << error;
    EXPECT_EQ(got.status, RespStatus::Ok);
    EXPECT_EQ(got.flags, resp.flags);
    EXPECT_EQ(got.retryAfterMs, 77u);
    EXPECT_EQ(got.meta.events, 99u);
    EXPECT_EQ(got.meta.contentHash, resp.meta.contentHash);
    EXPECT_TRUE(got.meta.anyDataRace);
    EXPECT_TRUE(got.meta.salvaged);
    EXPECT_EQ(got.meta.unresolvedPairings, 7u);
    EXPECT_EQ(got.report, resp.report);

    // Trailing garbage is malformed, not silently ignored.
    std::vector<std::uint8_t> longer = frame;
    longer.push_back(0);
    EXPECT_FALSE(decodeResponseFrame(longer.data(), longer.size(),
                                     got, error));

    // The socket decoder sees the same fields.
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_TRUE(writeAll(sv[0], frame.data(), frame.size()));
    Response got2;
    EXPECT_EQ(readResponse(sv[1], got2, error), FrameReadStatus::Ok)
        << error;
    EXPECT_EQ(got2.report, resp.report);
    EXPECT_EQ(got2.meta.dataRaces, 2u);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(ServeProtocol, OversizedBodyIsRejectedBeforeRead)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    Request req;
    req.body.assign(4096, 0xab);
    const std::vector<std::uint8_t> frame = encodeRequestFrame(req);
    ASSERT_TRUE(writeAll(sv[0], frame.data(), frame.size()));

    Request got;
    std::string error;
    EXPECT_EQ(readRequest(sv[1], 1024, got, error),
              FrameReadStatus::TooLarge);

    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(ServeProtocol, BadMagicIsMalformed)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    const char junk[24] = "NOTAFRAME_____________!";
    ASSERT_TRUE(writeAll(sv[0], junk, sizeof(junk)));

    Request got;
    std::string error;
    EXPECT_EQ(readRequest(sv[1], 1 << 20, got, error),
              FrameReadStatus::Malformed);

    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(ServeProtocol, CacheRelevantFlagsKeepOnlySalvage)
{
    EXPECT_EQ(cacheRelevantFlags(kReqSalvage | kReqNoCache),
              kReqSalvage);
    EXPECT_EQ(cacheRelevantFlags(kReqNoCache), 0u);
}

// ---------------------------------------------------------------
// Result cache: LRU accounting + disk tier
// ---------------------------------------------------------------

namespace {

CachedResult
resultOfSize(std::size_t reportBytes, char fill = 'r')
{
    CachedResult v;
    v.report.assign(reportBytes, fill);
    v.meta.events = reportBytes;
    return v;
}

} // namespace

TEST(ServeCache, LruEvictionKeepsAccountingExact)
{
    // Per-entry cost = 256 overhead + report bytes (no meta error),
    // so two 1000-byte reports fit a 2600-byte budget, three don't.
    const std::uint64_t kCost = 256 + 1000;
    ResultCache cache(2 * kCost + 50);

    const CacheKey a{1, 10, 0}, b{2, 20, 0}, c{3, 30, 0};
    cache.put(a, resultOfSize(1000, 'a'));
    cache.put(b, resultOfSize(1000, 'b'));

    CacheStats st = cache.stats();
    EXPECT_EQ(st.entries, 2u);
    EXPECT_EQ(st.bytes, 2 * kCost);
    EXPECT_EQ(st.evictions, 0u);

    // Touch A so B is the LRU entry, then overflow with C.
    CachedResult out;
    ASSERT_TRUE(cache.get(a, out));
    EXPECT_EQ(out.report[0], 'a');
    cache.put(c, resultOfSize(1000, 'c'));

    st = cache.stats();
    EXPECT_EQ(st.entries, 2u);
    EXPECT_EQ(st.bytes, 2 * kCost);
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.insertions, 3u);

    EXPECT_TRUE(cache.get(a, out));  // survived (was MRU)
    EXPECT_FALSE(cache.get(b, out)); // evicted (was LRU)
    EXPECT_TRUE(cache.get(c, out));

    // Replacing an entry must not double-count its bytes.
    cache.put(a, resultOfSize(1000, 'A'));
    st = cache.stats();
    EXPECT_EQ(st.entries, 2u);
    EXPECT_EQ(st.bytes, 2 * kCost);
    ASSERT_TRUE(cache.get(a, out));
    EXPECT_EQ(out.report[0], 'A');
}

TEST(ServeCache, ZeroBudgetDisablesCaching)
{
    ResultCache cache(0);
    const CacheKey k{42, 7, 0};
    cache.put(k, resultOfSize(10));
    CachedResult out;
    EXPECT_FALSE(cache.get(k, out));
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCache, DiskTierSurvivesMemoryDropAndDetectsTornWrites)
{
    TempDir dir;
    ResultCache cache(1 << 20, dir.path);

    const CacheKey k{0x1122334455667788ull, 555, kReqSalvage};
    CachedResult v = resultOfSize(64, 'd');
    v.meta.contentHash = k.hash;
    v.meta.anyDataRace = true;
    v.respFlags = kRespAnyDataRace;
    cache.put(k, v);

    const std::string file =
        dir.path + "/" + ResultCache::entryFileName(k);
    ASSERT_TRUE(fs::exists(file));

    // Memory gone, disk answers — and re-warms the memory tier.
    cache.dropMemoryForTest();
    CachedResult out;
    ASSERT_TRUE(cache.get(k, out));
    EXPECT_EQ(out.report, v.report);
    EXPECT_EQ(out.respFlags, kRespAnyDataRace);
    EXPECT_TRUE(out.meta.anyDataRace);
    EXPECT_EQ(cache.stats().diskHits, 1u);
    ASSERT_TRUE(cache.get(k, out)); // now a memory hit again

    // A torn/corrupted entry fails its CRC and is treated as a
    // miss, never served.
    cache.dropMemoryForTest();
    {
        std::fstream f(file,
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(-1, std::ios::end); // clobber the report tail
        f.put('X');
    }
    EXPECT_FALSE(cache.get(k, out));
    EXPECT_GE(cache.stats().diskErrors, 1u);
}

// ---------------------------------------------------------------
// Server end to end (real sockets, production client)
// ---------------------------------------------------------------

namespace {

struct RunningServer
{
    ServeOptions opts;
    std::unique_ptr<Server> server;
    ServerAddress addr;
    TempDir dir;

    explicit RunningServer(
        std::function<void(ServeOptions &)> tweak = {})
    {
        opts.socketPath = dir.path + "/serve.sock";
        opts.jobs = 2;
        if (tweak)
            tweak(opts);
        server = std::make_unique<Server>(opts);
        EXPECT_TRUE(server->start()) << server->lastError();
        std::string error;
        EXPECT_TRUE(parseServerAddress(server->boundAddress(), addr,
                                       error))
            << error;
    }

    ~RunningServer()
    {
        if (server) {
            server->beginShutdown();
            server->waitDrained();
        }
    }
};

} // namespace

TEST(ServeServer, ReportIsByteIdenticalAndSecondSubmitHitsCache)
{
    RunningServer rs;
    const std::vector<std::uint8_t> bytes = makeTraceBytes(11);
    const std::string expected = localCheckReport(bytes);

    SubmitResult first = submitTraceBytes(rs.addr, bytes);
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_EQ(first.response.status, RespStatus::Ok)
        << first.response.meta.error;
    EXPECT_FALSE(first.response.cacheHit());
    EXPECT_EQ(first.response.report, expected);
    EXPECT_EQ(first.response.meta.fileBytes, bytes.size());
    EXPECT_EQ(first.response.meta.contentHash,
              contentHash64(bytes.data(), bytes.size()));

    SubmitResult second = submitTraceBytes(rs.addr, bytes);
    ASSERT_TRUE(second.ok) << second.error;
    ASSERT_EQ(second.response.status, RespStatus::Ok);
    EXPECT_TRUE(second.response.cacheHit());
    EXPECT_EQ(second.response.report, expected);

    // One analysis, one cache hit — the second submission never
    // touched the engine.
    EXPECT_EQ(rs.server->stats().analyses, 1u);
    EXPECT_EQ(rs.server->cacheStats().hits, 1u);

    SubmitResult status = queryStatus(rs.addr);
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_NE(status.response.report.find("wmrace-serve-status"),
              std::string::npos);
}

TEST(ServeServer, NoCacheFlagBypassesTheCache)
{
    RunningServer rs;
    const std::vector<std::uint8_t> bytes = makeTraceBytes(12);

    SubmitOptions opts;
    opts.noCache = true;
    SubmitResult a = submitTraceBytes(rs.addr, bytes, opts);
    ASSERT_TRUE(a.ok && a.response.ok()) << a.error;
    SubmitResult b = submitTraceBytes(rs.addr, bytes, opts);
    ASSERT_TRUE(b.ok && b.response.ok()) << b.error;
    EXPECT_FALSE(b.response.cacheHit());
    EXPECT_EQ(rs.server->stats().analyses, 2u);
    EXPECT_EQ(a.response.report, b.response.report);
}

TEST(ServeServer, UnparseableUploadIsBadRequest)
{
    RunningServer rs;
    const std::string junk = "NOTATRC!this is not a trace container";
    const std::vector<std::uint8_t> bytes(junk.begin(), junk.end());

    SubmitResult res = submitTraceBytes(rs.addr, bytes);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.response.status, RespStatus::BadRequest);
    EXPECT_NE(res.response.meta.error.find("unrecognized magic"),
              std::string::npos)
        << res.response.meta.error;
    EXPECT_EQ(rs.server->stats().badRequests, 1u);
}

TEST(ServeServer, SalvageUploadMatchesLocalSalvageCheck)
{
    SyntheticTraceOptions o;
    o.procs = 4;
    o.eventsPerProc = 120;
    o.seed = 21;
    std::vector<std::uint8_t> bytes =
        serializeSegmentedTrace(makeSyntheticTrace(o));
    bytes.resize(bytes.size() * 3 / 4); // tear off the tail
    const std::string expected = localSalvageReport(bytes);

    RunningServer rs;

    // Without --salvage the strict reader refuses the damage.
    SubmitResult strict = submitTraceBytes(rs.addr, bytes);
    ASSERT_TRUE(strict.ok) << strict.error;
    EXPECT_EQ(strict.response.status, RespStatus::BadRequest);

    SubmitOptions opts;
    opts.salvage = true;
    SubmitResult res = submitTraceBytes(rs.addr, bytes, opts);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.response.status, RespStatus::Ok)
        << res.response.meta.error;
    EXPECT_TRUE(res.response.meta.salvaged);
    EXPECT_NE(res.response.flags & kRespSalvaged, 0u);
    EXPECT_EQ(res.response.report, expected);

    // Salvage mode is part of the cache key: the same bytes with
    // salvage on hit the salvage result, and the strict failure was
    // never cached.
    SubmitResult again = submitTraceBytes(rs.addr, bytes, opts);
    ASSERT_TRUE(again.ok && again.response.ok()) << again.error;
    EXPECT_TRUE(again.response.cacheHit());
    EXPECT_EQ(again.response.report, expected);
}

TEST(ServeServer, FloodedQueueAnswersOverloadedWithRetryHint)
{
    AnalysisGate gate;
    RunningServer rs([&](ServeOptions &o) {
        o.workers = 1;
        o.maxQueue = 1;
        o.retryAfterMs = 123;
        o.cacheBytes = 0; // every submission must queue
        o.testAnalysisGate = gate.hook();
    });

    // A occupies the worker (parked on the gate), B fills the
    // 1-deep queue, so C must be rejected at admission.
    std::thread ta([&] {
        SubmitResult r = submitTraceBytes(rs.addr, makeTraceBytes(31));
        EXPECT_TRUE(r.ok && r.response.ok()) << r.error;
    });
    gate.waitEntered(1);

    std::thread tb([&] {
        SubmitResult r = submitTraceBytes(rs.addr, makeTraceBytes(32));
        EXPECT_TRUE(r.ok && r.response.ok()) << r.error;
    });
    ASSERT_TRUE(pollFor(
        [&] { return rs.server->stats().queueDepth >= 1; }))
        << "second submission never reached the queue";

    SubmitOptions once;
    once.maxAttempts = 1; // surface the rejection, don't retry
    SubmitResult rc =
        submitTraceBytes(rs.addr, makeTraceBytes(33), once);
    ASSERT_TRUE(rc.ok) << rc.error;
    EXPECT_EQ(rc.response.status, RespStatus::Overloaded);
    EXPECT_EQ(rc.response.retryAfterMs, 123u);
    EXPECT_GE(rs.server->stats().overloaded, 1u);

    // Release the latch: the parked and queued submissions finish.
    gate.release();
    ta.join();
    tb.join();
    EXPECT_EQ(rs.server->stats().analyses, 2u);

    // With the queue drained the retry loop succeeds end to end.
    SubmitOptions retrying;
    retrying.maxAttempts = 8;
    retrying.retryAfterMs = 10;
    SubmitResult rd =
        submitTraceBytes(rs.addr, makeTraceBytes(33), retrying);
    ASSERT_TRUE(rd.ok) << rd.error;
    EXPECT_EQ(rd.response.status, RespStatus::Ok);
}

TEST(ServeServer, ShutdownDrainsQueuedWorkBeforeExiting)
{
    AnalysisGate gate;
    auto rs = std::make_unique<RunningServer>([&](ServeOptions &o) {
        o.workers = 1;
        o.maxQueue = 4;
        o.cacheBytes = 0;
        o.testAnalysisGate = gate.hook();
    });

    std::thread ta([&] {
        SubmitResult r =
            submitTraceBytes(rs->addr, makeTraceBytes(41));
        EXPECT_TRUE(r.ok && r.response.ok()) << r.error;
    });
    gate.waitEntered(1);
    std::thread tb([&] {
        SubmitResult r =
            submitTraceBytes(rs->addr, makeTraceBytes(42));
        EXPECT_TRUE(r.ok && r.response.ok()) << r.error;
    });
    ASSERT_TRUE(pollFor(
        [&] { return rs->server->stats().queueDepth >= 1; }));

    // SIGTERM's handler calls exactly this; the queued request must
    // still be analyzed and answered before run() returns.
    rs->server->beginShutdown();
    gate.release();
    ta.join();
    tb.join();
    rs->server->waitDrained();
    EXPECT_EQ(rs->server->stats().analyses, 2u);
    EXPECT_EQ(rs->server->stats().queueDepth, 0u);
    rs->server.reset(); // the destructor's shutdown is a no-op path
    rs.reset();
}

TEST(ServeServer, CrashRecoveryReanalyzesUnjournaledSpoolEntries)
{
    TempDir spool;
    const std::vector<std::uint8_t> bytes = makeTraceBytes(51);
    const std::string expected = localCheckReport(bytes);
    const std::uint64_t hash =
        contentHash64(bytes.data(), bytes.size());

    // Simulate a server killed after admission, before completion:
    // the spool holds the request, the journal never saw it.
    const std::string orphan =
        spool.path + "/" +
        strformat("h%s-s%llu-f0.req", hash64Hex(hash).c_str(),
                  static_cast<unsigned long long>(bytes.size()));
    ASSERT_TRUE(writeFileAtomic(orphan, bytes));

    // And one request the dead server DID finish (journaled): it
    // must be cleaned up without re-analysis.
    const std::vector<std::uint8_t> doneBytes = makeTraceBytes(52);
    const std::uint64_t doneHash =
        contentHash64(doneBytes.data(), doneBytes.size());
    const std::string donePath =
        spool.path + "/" +
        strformat("h%s-s%llu-f0.req", hash64Hex(doneHash).c_str(),
                  static_cast<unsigned long long>(doneBytes.size()));
    ASSERT_TRUE(writeFileAtomic(donePath, doneBytes));
    {
        CheckpointWriter journal;
        ASSERT_TRUE(journal.open(spool.path + "/journal.wmrck"));
        TraceRunResult rr;
        rr.path = donePath;
        rr.status = TraceRunStatus::Ok;
        ASSERT_TRUE(journal.append(rr));
    }

    RunningServer rs([&](ServeOptions &o) {
        o.spoolDir = spool.path;
    });
    EXPECT_EQ(rs.server->stats().recovered, 1u);

    // Both spool entries are consumed either way.
    EXPECT_FALSE(fs::exists(orphan));
    EXPECT_FALSE(fs::exists(donePath));

    // The recovered analysis is already in the cache: the very
    // first submission of those bytes is a hit, byte-identical to
    // a local check, with zero server-side analyses.
    SubmitResult res = submitTraceBytes(rs.addr, bytes);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.response.status, RespStatus::Ok)
        << res.response.meta.error;
    EXPECT_TRUE(res.response.cacheHit());
    EXPECT_EQ(res.response.report, expected);
    EXPECT_EQ(rs.server->stats().analyses, 0u);

    // The journaled entry was NOT re-analyzed into the cache.
    SubmitResult res2 = submitTraceBytes(rs.addr, doneBytes);
    ASSERT_TRUE(res2.ok && res2.response.ok()) << res2.error;
    EXPECT_FALSE(res2.response.cacheHit());
}

TEST(ServeServer, SpoolFileIsRemovedAfterNormalCompletion)
{
    TempDir spool;
    RunningServer rs([&](ServeOptions &o) {
        o.spoolDir = spool.path;
    });

    const std::vector<std::uint8_t> bytes = makeTraceBytes(61);
    SubmitResult res = submitTraceBytes(rs.addr, bytes);
    ASSERT_TRUE(res.ok && res.response.ok()) << res.error;

    // Only the journal remains: the .req was consumed.
    unsigned reqFiles = 0;
    for (const fs::directory_entry &de :
         fs::directory_iterator(spool.path))
        if (de.path().extension() == ".req")
            ++reqFiles;
    EXPECT_EQ(reqFiles, 0u);
    EXPECT_TRUE(fs::exists(spool.path + "/journal.wmrck"));
}

TEST(ServeServer, TcpLoopbackServesLikeTheUnixSocket)
{
    RunningServer rs([](ServeOptions &o) {
        o.socketPath.clear();
        o.tcpPort = 0; // kernel-assigned
    });
    EXPECT_TRUE(rs.addr.tcp);
    EXPECT_GT(rs.addr.port, 0);

    const std::vector<std::uint8_t> bytes = makeTraceBytes(71);
    SubmitResult res = submitTraceBytes(rs.addr, bytes);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.response.status, RespStatus::Ok);
    EXPECT_EQ(res.response.report, localCheckReport(bytes));
}

// ---------------------------------------------------------------
// Client address parsing
// ---------------------------------------------------------------

TEST(ServeClient, ParseServerAddressAcceptsPathAndTcpForms)
{
    ServerAddress a;
    std::string error;

    ASSERT_TRUE(parseServerAddress("/tmp/x.sock", a, error));
    EXPECT_FALSE(a.tcp);
    EXPECT_EQ(a.socketPath, "/tmp/x.sock");
    EXPECT_EQ(a.str(), "/tmp/x.sock");

    ASSERT_TRUE(parseServerAddress("tcp:127.0.0.1:8080", a, error));
    EXPECT_TRUE(a.tcp);
    EXPECT_EQ(a.host, "127.0.0.1");
    EXPECT_EQ(a.port, 8080);
    EXPECT_EQ(a.str(), "tcp:127.0.0.1:8080");
}

TEST(ServeClient, ParseServerAddressRejectsBadTcpForms)
{
    ServerAddress a;
    std::string error;
    EXPECT_FALSE(parseServerAddress("", a, error));
    EXPECT_FALSE(parseServerAddress("tcp:", a, error));
    EXPECT_FALSE(parseServerAddress("tcp:hostonly", a, error));
    EXPECT_FALSE(parseServerAddress("tcp::1234", a, error));
    EXPECT_FALSE(parseServerAddress("tcp:host:0", a, error));
    EXPECT_FALSE(parseServerAddress("tcp:host:65536", a, error));
    EXPECT_FALSE(parseServerAddress("tcp:host:port", a, error));
}

// ---------------------------------------------------------------
// Client retry schedule (`wmrace submit` under admission rejection)
// ---------------------------------------------------------------

namespace {

/** A scripted fake server: answers each accepted connection with the
 *  next canned response, recording accept times — the deterministic
 *  counterpart of a flooded real server, for pinning down the
 *  client's bounded-retry schedule. */
struct ScriptedServer
{
    TempDir dir;
    ServerAddress addr;
    int listenFd = -1;
    std::thread th;
    std::vector<std::chrono::steady_clock::time_point> accepts;

    explicit ScriptedServer(std::vector<Response> script)
    {
        addr.socketPath = dir.path + "/scripted.sock";
        listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        EXPECT_GE(listenFd, 0);
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::memcpy(sa.sun_path, addr.socketPath.c_str(),
                    addr.socketPath.size() + 1);
        EXPECT_EQ(::bind(listenFd,
                         reinterpret_cast<sockaddr *>(&sa),
                         sizeof(sa)),
                  0);
        EXPECT_EQ(::listen(listenFd, 8), 0);
        th = std::thread([this, script = std::move(script)] {
            for (const Response &resp : script) {
                const int fd = ::accept(listenFd, nullptr, nullptr);
                if (fd < 0)
                    break;
                accepts.push_back(
                    std::chrono::steady_clock::now());
                Request req;
                std::string err;
                (void)readRequest(fd, 1ull << 30, req, err);
                const std::vector<std::uint8_t> frame =
                    encodeResponseFrame(resp);
                (void)writeAll(fd, frame.data(), frame.size());
                ::close(fd);
            }
        });
    }

    /** Wait for the whole script to be consumed. */
    void
    finish()
    {
        if (th.joinable())
            th.join();
    }

    ~ScriptedServer()
    {
        finish();
        if (listenFd >= 0)
            ::close(listenFd);
    }

    /** Milliseconds between accepted connections @p i and @p i+1. */
    long
    gapMs(std::size_t i) const
    {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   accepts[i + 1] - accepts[i])
            .count();
    }
};

Response
overloadedResp(std::uint32_t retryAfterMs)
{
    Response r;
    r.status = RespStatus::Overloaded;
    r.retryAfterMs = retryAfterMs;
    r.meta.error = "queue full";
    return r;
}

Response
okResp()
{
    Response r;
    r.status = RespStatus::Ok;
    r.report = "scripted ok\n";
    return r;
}

} // namespace

TEST(ServeRetry, BoundedScheduleStopsAtMaxAttempts)
{
    ScriptedServer srv({overloadedResp(20), overloadedResp(20),
                        overloadedResp(20)});
    SubmitOptions opts;
    opts.maxAttempts = 3;
    opts.retryAfterMs = 5; // the server hint must win over this
    SubmitResult res =
        submitTraceBytes(srv.addr, makeTraceBytes(81), opts);
    srv.finish();

    // Exactly maxAttempts round trips, then the rejection surfaces.
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.response.status, RespStatus::Overloaded);
    ASSERT_EQ(srv.accepts.size(), 3u);

    // The server's 20ms retry-after hint paced both retries (5ms
    // would be too fast; allow scheduler slop downward to 15ms).
    EXPECT_GE(srv.gapMs(0), 15);
    EXPECT_GE(srv.gapMs(1), 15);
}

TEST(ServeRetry, HintHonoredThenEventualOkReturned)
{
    ScriptedServer srv({overloadedResp(40), okResp()});
    SubmitOptions opts;
    opts.maxAttempts = 4;
    opts.retryAfterMs = 5;
    SubmitResult res =
        submitTraceBytes(srv.addr, makeTraceBytes(82), opts);
    srv.finish();

    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.response.status, RespStatus::Ok);
    EXPECT_EQ(res.response.report, "scripted ok\n");
    ASSERT_EQ(srv.accepts.size(), 2u); // no retries after success
    EXPECT_GE(srv.gapMs(0), 35);
}

TEST(ServeRetry, ZeroHintFallsBackToClientDefaultAndDrainingRetries)
{
    // Draining is retryable too; a zero hint means "use the
    // client-side default pause".
    ScriptedServer srv({[] {
                            Response r;
                            r.status = RespStatus::Draining;
                            r.retryAfterMs = 0;
                            r.meta.error = "draining";
                            return r;
                        }(),
                        okResp()});
    SubmitOptions opts;
    opts.maxAttempts = 4;
    opts.retryAfterMs = 30;
    SubmitResult res =
        submitTraceBytes(srv.addr, makeTraceBytes(83), opts);
    srv.finish();

    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.response.status, RespStatus::Ok);
    ASSERT_EQ(srv.accepts.size(), 2u);
    EXPECT_GE(srv.gapMs(0), 25);
}

// ---------------------------------------------------------------
// Fault-injection hardening: every injected failure must degrade
// into a typed error or counted fallback — never a crash or hang.
// ---------------------------------------------------------------

namespace {

/** Scoped schedule: configures on entry, disables on exit so no
 *  schedule leaks into later tests. */
struct FaultSchedule
{
    explicit FaultSchedule(const std::string &spec,
                           std::uint64_t seed = 0)
    {
        EXPECT_TRUE(fault::configure(spec, seed));
    }

    ~FaultSchedule() { fault::configure("", 0); }
};

} // namespace

TEST(ServeFault, SlowRequestIsCutOffByTheTransferDeadline)
{
    // A client trickling one byte at a time must be disconnected by
    // the TOTAL-transfer deadline even though each recv makes
    // progress (SO_RCVTIMEO alone never fires).
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    std::atomic<bool> stop{false};
    std::thread dripper([&] {
        Request req;
        req.body.assign(4096, 0x5a);
        const std::vector<std::uint8_t> frame =
            encodeRequestFrame(req);
        for (std::size_t i = 0; i < frame.size() && !stop; ++i) {
            if (!writeAll(sv[1], frame.data() + i, 1))
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
    });

    Request out;
    std::string error;
    const auto t0 = std::chrono::steady_clock::now();
    const FrameReadStatus rs =
        readRequest(sv[0], 1ull << 20, out, error, /*deadlineMs=*/
                    150);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(rs, FrameReadStatus::IoError);
    EXPECT_FALSE(error.empty());
    EXPECT_LT(elapsed, 5000); // cut off, not wedged
    stop = true;
    ::close(sv[0]);
    ::close(sv[1]);
    dripper.join();
}

TEST(ServeFault, ConnectionResetAfterRequestIsTypedClientError)
{
    RunningServer rs;
    {
        FaultSchedule sched("serve.conn.reset@n1");
        SubmitOptions once;
        once.maxAttempts = 1;
        SubmitResult res = submitTraceBytes(
            rs.addr, makeTraceBytes(91), once);
        EXPECT_FALSE(res.ok);
        EXPECT_FALSE(res.error.empty());
    }
    // The server survived: the next submission analyzes normally.
    SubmitResult again =
        submitTraceBytes(rs.addr, makeTraceBytes(91));
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.response.status, RespStatus::Ok);
}

TEST(ServeFault, TruncatedResponseIsTypedClientError)
{
    RunningServer rs;
    {
        FaultSchedule sched("serve.resp.truncate@n1");
        SubmitResult res =
            submitTraceBytes(rs.addr, makeTraceBytes(92));
        EXPECT_FALSE(res.ok);
        EXPECT_FALSE(res.error.empty());
    }
    SubmitResult again =
        submitTraceBytes(rs.addr, makeTraceBytes(92));
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.response.status, RespStatus::Ok);
}

TEST(ServeFault, RefusedAcceptIsTypedClientErrorNotServerDeath)
{
    RunningServer rs;
    {
        FaultSchedule sched("serve.accept.fail@n1");
        SubmitOptions once;
        once.maxAttempts = 1;
        SubmitResult res = submitTraceBytes(
            rs.addr, makeTraceBytes(93), once);
        EXPECT_FALSE(res.ok);
    }
    SubmitResult again =
        submitTraceBytes(rs.addr, makeTraceBytes(93));
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.response.status, RespStatus::Ok);
}

TEST(ServeFault, SpoolEnospcDegradesToUnspooledAnalysis)
{
    TempDir spool;
    RunningServer rs([&](ServeOptions &o) {
        o.spoolDir = spool.path;
    });
    const std::uint64_t degraded0 =
        obs::counter("serve.spool.degraded").value();
    {
        FaultSchedule sched("serve.spool.enospc");
        const std::vector<std::uint8_t> bytes = makeTraceBytes(94);
        SubmitResult res = submitTraceBytes(rs.addr, bytes);
        // Losing the spool loses crash recovery, NOT the analysis.
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.response.status, RespStatus::Ok);
        EXPECT_EQ(res.response.report, localCheckReport(bytes));
    }
    EXPECT_GT(obs::counter("serve.spool.degraded").value(),
              degraded0);
    EXPECT_GT(obs::counter("serve.disk.enospc").value(), 0u);
}

TEST(ServeFault, TornCacheDiskWriteDegradesToMissNotWrongReport)
{
    TempDir dir;
    ResultCache cache(1 << 20, dir.path);
    const CacheKey k{0x1234, 24, 0};
    CachedResult v;
    v.report = "torn-write victim report\n";
    {
        FaultSchedule sched("serve.cache.torn");
        cache.put(k, v);
    }
    // Memory still has it...
    CachedResult out;
    ASSERT_TRUE(cache.get(k, out));
    // ...but the disk tier's CRC catches the torn entry: miss.
    cache.dropMemoryForTest();
    EXPECT_FALSE(cache.get(k, out));
    EXPECT_GE(cache.stats().diskErrors, 1u);
}
