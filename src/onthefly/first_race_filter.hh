/**
 * @file
 * On-the-fly FIRST-race classification — the paper's stated future
 * work ("Future work includes investigating how our method might be
 * employed on-the-fly to locate the first data races", Section 5).
 *
 * The post-mortem method orders race partitions with the augmented
 * graph G'; online we track the affects relation (Def. 3.3) forward:
 *
 *  - when a race is reported, both endpoint processors become
 *    AFFECTED (their later operations are hb1-after an endpoint);
 *  - the affected flag propagates exactly along hb1: po (the flag is
 *    sticky per processor) and so1 (a release write publishes the
 *    releasing processor's flag; the pairing acquire joins it);
 *  - a race is classified FIRST iff neither endpoint's processor was
 *    affected when it was reported.
 *
 * This matches Def. 3.3's hb1-based affects for races whose cause
 * chain flows forward in the stream; it is conservative in one way —
 * an endpoint processor marked affected stays affected even for
 * operations that only conflict coincidentally — and the paper's
 * mutual-affection cycles (one G' SCC) are split by report order:
 * the earliest-reported race of a cycle is kept first and the rest
 * demoted, whereas the post-mortem method reports the whole
 * partition.  bench_ext_onthefly_first quantifies the agreement.
 */

#ifndef WMR_ONTHEFLY_FIRST_RACE_FILTER_HH
#define WMR_ONTHEFLY_FIRST_RACE_FILTER_HH

#include <unordered_map>

#include "onthefly/vc_detector.hh"

namespace wmr {

/** A race classified online as first or affected. */
struct ClassifiedRace
{
    OtfRace race;
    bool first = true;
};

/**
 * Wraps a VcDetector and classifies its reports online.
 *
 * Usage: attach as the executor's OpSink; afterwards firstRaces()
 * holds the races no earlier race affects.
 */
class FirstRaceFilter : public OpSink
{
  public:
    FirstRaceFilter(ProcId nprocs, Addr words,
                    const VcDetectorOptions &opts = {});

    void onOp(const MemOp &op) override;

    /** @return all races with their online first/affected verdicts. */
    const std::vector<ClassifiedRace> &classified() const
    {
        return classified_;
    }

    /** @return the races classified first (deduplicated statically). */
    std::set<OtfRace> firstRaces() const;

    /** @return the underlying detector (stats, full race list). */
    const VcDetector &detector() const { return det_; }

  private:
    VcDetector det_;
    std::vector<bool> procAffected_;

    /** Affected flag carried by each release write's publication. */
    std::unordered_map<OpId, bool> publishedAffected_;

    std::vector<ClassifiedRace> classified_;
    std::size_t seenRaces_ = 0;
};

} // namespace wmr

#endif // WMR_ONTHEFLY_FIRST_RACE_FILTER_HH
