/**
 * @file
 * Runtime-tracer demo, fully annotated: every mutex section carries
 * acquire/release annotations, so the recorded trace orders all
 * conflicting accesses (so1 edges) and the analysis reports no data
 * race.  See rt_demo_shared.hh for modes.
 */

#include "rt_demo_shared.hh"

int
main(int argc, char **argv)
{
    return rtdemo::demoMain(argc, argv, /*annotateLocks=*/true,
                            "rt_demo_racefree.trace");
}
