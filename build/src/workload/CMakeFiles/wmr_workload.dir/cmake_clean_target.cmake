file(REMOVE_RECURSE
  "libwmr_workload.a"
)
